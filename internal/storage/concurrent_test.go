package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// buildRangedTable fills a table with groups keys per of nGroups prefixes
// ("g<i>-<j>") and returns the tree. Values encode their own key so
// readers can verify what they got.
func buildRangedTable(t testing.TB, db *DB, nGroups, groupSize int) *Tree {
	t.Helper()
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	bl, err := tr.NewBulkLoader(0)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < nGroups; g++ {
		for j := 0; j < groupSize; j++ {
			k := []byte(fmt.Sprintf("g%02d-%06d", g, j))
			if err := bl.Add(k, append([]byte("v:"), k...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestConcurrentCursorsDisjoint runs one cursor per goroutine over
// disjoint key ranges of the same tree. Run with -race: this is the
// access pattern parallel ERA/Merge queries produce (different posting
// ranges, shared pages near the root).
func TestConcurrentCursorsDisjoint(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	const nGroups, groupSize = 8, 2000
	tr := buildRangedTable(t, db, nGroups, groupSize)

	var wg sync.WaitGroup
	errs := make(chan error, nGroups)
	for g := 0; g < nGroups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			prefix := []byte(fmt.Sprintf("g%02d-", g))
			cur := tr.Cursor()
			count := 0
			var last []byte
			ok, err := cur.SeekPrefix(prefix)
			for ; ok; ok, err = cur.NextPrefix(prefix) {
				if last != nil && bytes.Compare(cur.Key(), last) <= 0 {
					errs <- fmt.Errorf("group %d: keys out of order", g)
					return
				}
				last = append(last[:0], cur.Key()...)
				if !bytes.Equal(cur.Value(), append([]byte("v:"), cur.Key()...)) {
					errs <- fmt.Errorf("group %d: value mismatch at %q", g, cur.Key())
					return
				}
				count++
			}
			if err != nil {
				errs <- err
				return
			}
			if count != groupSize {
				errs <- fmt.Errorf("group %d: scanned %d keys, want %d", g, count, groupSize)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentCursorsOverlapping runs full scans, point gets and seeks
// over the same key range from many goroutines, against an on-disk store
// with a cache far smaller than the data so readers constantly miss,
// evict, and re-load the same pages (the stampede path: two goroutines
// decoding the same page concurrently must converge on one cached copy).
func TestConcurrentCursorsOverlapping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "concurrent.db")
	db, err := Open(path, &Options{CachePages: 64, CacheShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const nGroups, groupSize = 4, 3000
	tr := buildRangedTable(t, db, nGroups, groupSize)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	total := nGroups * groupSize

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch w % 3 {
			case 0: // full scan
				cur := tr.Cursor()
				count := 0
				ok, err := cur.First()
				for ; ok; ok, err = cur.Next() {
					count++
				}
				if err != nil {
					errs <- err
					return
				}
				if count != total {
					errs <- fmt.Errorf("worker %d: scanned %d, want %d", w, count, total)
				}
			case 1: // strided point gets
				for i := 0; i < 2000; i++ {
					j := (i*7919 + w*131) % groupSize
					g := (i + w) % nGroups
					k := []byte(fmt.Sprintf("g%02d-%06d", g, j))
					v, err := tr.Get(k)
					if err != nil {
						errs <- fmt.Errorf("worker %d: Get(%q): %v", w, k, err)
						return
					}
					if !bytes.Equal(v, append([]byte("v:"), k...)) {
						errs <- fmt.Errorf("worker %d: value mismatch at %q", w, k)
						return
					}
				}
			case 2: // seek + short range read
				cur := tr.Cursor()
				for i := 0; i < 500; i++ {
					j := (i*6151 + w*17) % groupSize
					g := (i + w) % nGroups
					k := []byte(fmt.Sprintf("g%02d-%06d", g, j))
					ok, err := cur.Seek(k)
					if err != nil || !ok {
						errs <- fmt.Errorf("worker %d: Seek(%q) = %v, %v", w, k, ok, err)
						return
					}
					for s := 0; s < 10; s++ {
						if ok, err = cur.Next(); err != nil {
							errs <- err
							return
						} else if !ok {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentStatsSnapshot checks that snapshots taken while readers
// hammer the store are untorn and monotone: every counter in a later
// snapshot is >= the same counter in an earlier one.
func TestConcurrentStatsSnapshot(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	tr := buildRangedTable(t, db, 4, 1000)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := tr.Cursor()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				k := []byte(fmt.Sprintf("g%02d-%06d", (i+w)%4, (i*7919)%1000))
				if _, err := tr.Get(k); err != nil {
					t.Error(err)
					return
				}
				if ok, _ := cur.Seek(k); ok {
					cur.Next()
				}
				i++
			}
		}()
	}
	prev := db.Stats()
	for i := 0; i < 5000; i++ {
		st := db.Stats()
		d := st.Sub(prev)
		// Sub of a later snapshot minus an earlier one must not wrap:
		// wrapping would mean a counter appeared to decrease (a torn or
		// non-monotone read).
		const wrapped = uint64(1) << 63
		if d.Gets >= wrapped || d.Seeks >= wrapped || d.Nexts >= wrapped ||
			d.CacheHits >= wrapped || d.CacheMisses >= wrapped || d.PagesRead >= wrapped {
			t.Fatalf("non-monotone stats window: %+v", d)
		}
		prev = st
	}
	close(done)
	wg.Wait()
}

// TestShardSizing pins the shard-count derivation: tiny caches collapse
// to fewer shards rather than degenerate per-shard LRUs, and requested
// counts round up to powers of two.
func TestShardSizing(t *testing.T) {
	cases := []struct {
		cache, shards int
		wantShards    int
	}{
		{0, 0, defaultCacheShards}, // defaults
		{16, 0, 2},                 // 16 pages -> 2 shards of 8
		{16, 64, 2},                // request capped by cache size
		{4096, 3, 4},               // rounds up to power of two
		{defaultCachePages, 0, defaultCacheShards},
	}
	for _, c := range cases {
		p := newPager(&memBackend{}, meta{}, c.cache, c.shards)
		if len(p.shards) != c.wantShards {
			t.Errorf("newPager(cache=%d, shards=%d): got %d shards, want %d",
				c.cache, c.shards, len(p.shards), c.wantShards)
		}
		if int(p.mask) != len(p.shards)-1 {
			t.Errorf("mask %d inconsistent with %d shards", p.mask, len(p.shards))
		}
	}
}
