package storage

import "bytes"

// Cursor provides ordered sequential access over a Tree, the access path
// all three TReX retrieval methods are built on. A cursor is positioned
// "before" a key/value pair; Key/Value are valid after a positioning call
// reports true.
//
// Cursors observe a live tree. Mutating the tree while iterating
// invalidates the cursor (it must be re-Seeked); TReX never mutates tables
// during retrieval.
//
// A Cursor is not safe for concurrent use, but any number of cursors may
// iterate the same tree from different goroutines concurrently (the page
// cache under them is sharded and their stat counting is atomic): give
// each goroutine its own Cursor.
type Cursor struct {
	tree  *Tree
	leaf  *node
	index int
	valid bool
}

// Cursor returns a new unpositioned cursor.
func (t *Tree) Cursor() *Cursor { return &Cursor{tree: t} }

// First positions the cursor at the smallest key. It reports whether the
// tree is non-empty.
func (c *Cursor) First() (bool, error) {
	c.tree.db.pager.countSeek()
	leaf, err := c.tree.firstLeaf()
	if err != nil {
		return false, err
	}
	c.leaf = leaf
	c.index = 0
	c.valid = leaf != nil && len(leaf.cells) > 0
	if c.valid {
		return true, nil
	}
	return c.skipEmptyLeaves()
}

// Seek positions the cursor at the smallest key >= key. It reports whether
// such a key exists.
func (c *Cursor) Seek(key []byte) (bool, error) {
	c.tree.db.pager.countSeek()
	c.valid = false
	if c.tree.root == nilPage {
		return false, nil
	}
	leaf, err := c.tree.descend(key)
	if err != nil {
		return false, err
	}
	i, _ := leaf.search(key)
	c.leaf = leaf
	c.index = i
	if i < len(leaf.cells) {
		c.valid = true
		return true, nil
	}
	return c.skipEmptyLeaves()
}

// SeekFloor positions the cursor at the greatest key <= key. It reports
// whether such a key exists. Posting-list random access uses this to find
// the fragment whose first position precedes a probe target.
func (c *Cursor) SeekFloor(key []byte) (bool, error) {
	c.tree.db.pager.countSeek()
	c.valid = false
	if c.tree.root == nilPage {
		return false, nil
	}
	// Descend, remembering the child index taken at each branch so we can
	// back up to a left subtree when the target leaf has no key <= key.
	type frame struct {
		n  *node
		ci int
	}
	var stack []frame
	n, err := c.tree.db.pager.node(c.tree.root)
	if err != nil {
		return false, err
	}
	for !n.isLeaf {
		ci := n.childIndexFor(key)
		stack = append(stack, frame{n: n, ci: ci})
		n, err = c.tree.db.pager.node(n.children[ci])
		if err != nil {
			return false, err
		}
	}
	i, found := n.search(key)
	if found {
		c.leaf, c.index, c.valid = n, i, true
		return true, nil
	}
	if i > 0 {
		c.leaf, c.index, c.valid = n, i-1, true
		return true, nil
	}
	// The whole leaf is greater than key: climb to the nearest ancestor
	// with a left sibling subtree and take its rightmost leaf cell.
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.ci == 0 {
			continue
		}
		n, err = c.tree.db.pager.node(f.n.children[f.ci-1])
		if err != nil {
			return false, err
		}
		for !n.isLeaf {
			n, err = c.tree.db.pager.node(n.children[len(n.children)-1])
			if err != nil {
				return false, err
			}
		}
		if len(n.cells) == 0 {
			continue // lazily-emptied leaf; keep climbing
		}
		c.leaf, c.index, c.valid = n, len(n.cells)-1, true
		return true, nil
	}
	return false, nil
}

// Next advances to the next key in order. It reports whether the cursor
// remains valid.
func (c *Cursor) Next() (bool, error) {
	if !c.valid {
		return false, nil
	}
	c.tree.db.pager.countNext()
	c.index++
	if c.index < len(c.leaf.cells) {
		return true, nil
	}
	return c.skipEmptyLeaves()
}

// skipEmptyLeaves advances across the sibling chain until a cell is found.
func (c *Cursor) skipEmptyLeaves() (bool, error) {
	for c.leaf != nil && c.index >= len(c.leaf.cells) {
		if c.leaf.next == nilPage {
			c.valid = false
			return false, nil
		}
		next, err := c.tree.db.pager.node(c.leaf.next)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.leaf = next
		c.index = 0
	}
	c.valid = c.leaf != nil
	return c.valid, nil
}

// Valid reports whether the cursor is positioned on a pair.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key. The slice is owned by the cursor and only
// valid until the next positioning call; copy it to retain it.
func (c *Cursor) Key() []byte {
	if !c.valid {
		return nil
	}
	return c.leaf.cells[c.index].key
}

// Value returns the current value under the same ownership rules as Key.
func (c *Cursor) Value() []byte {
	if !c.valid {
		return nil
	}
	return c.leaf.cells[c.index].val
}

// SeekPrefix positions the cursor at the first key with the given prefix
// and reports whether one exists.
func (c *Cursor) SeekPrefix(prefix []byte) (bool, error) {
	ok, err := c.Seek(prefix)
	if err != nil || !ok {
		return false, err
	}
	if !bytes.HasPrefix(c.Key(), prefix) {
		c.valid = false
		return false, nil
	}
	return true, nil
}

// NextPrefix advances within keys sharing prefix, invalidating the cursor
// once the prefix is left.
func (c *Cursor) NextPrefix(prefix []byte) (bool, error) {
	ok, err := c.Next()
	if err != nil || !ok {
		return false, err
	}
	if !bytes.HasPrefix(c.Key(), prefix) {
		c.valid = false
		return false, nil
	}
	return true, nil
}
