package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func fillSeq(t *testing.T, tr *Tree, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := tr.Put(k, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
}

func TestCursorEmptyTree(t *testing.T) {
	tr := newTestTree(t)
	cur := tr.Cursor()
	if ok, err := cur.First(); ok || err != nil {
		t.Fatalf("First on empty = (%v, %v)", ok, err)
	}
	if ok, err := cur.Seek([]byte("x")); ok || err != nil {
		t.Fatalf("Seek on empty = (%v, %v)", ok, err)
	}
	if cur.Key() != nil || cur.Value() != nil {
		t.Fatal("Key/Value non-nil on invalid cursor")
	}
	if ok, err := cur.Next(); ok || err != nil {
		t.Fatalf("Next on invalid = (%v, %v)", ok, err)
	}
}

func TestCursorSeekExact(t *testing.T) {
	tr := newTestTree(t)
	fillSeq(t, tr, 1000)
	cur := tr.Cursor()
	ok, err := cur.Seek([]byte("key-000500"))
	if err != nil || !ok {
		t.Fatalf("Seek = (%v, %v)", ok, err)
	}
	if string(cur.Key()) != "key-000500" {
		t.Fatalf("Key = %q", cur.Key())
	}
	if string(cur.Value()) != "500" {
		t.Fatalf("Value = %q", cur.Value())
	}
}

func TestCursorSeekBetween(t *testing.T) {
	tr := newTestTree(t)
	// Only even keys exist.
	for i := 0; i < 1000; i += 2 {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	cur := tr.Cursor()
	ok, err := cur.Seek([]byte("key-000501")) // between 500 and 502
	if err != nil || !ok {
		t.Fatalf("Seek = (%v, %v)", ok, err)
	}
	if string(cur.Key()) != "key-000502" {
		t.Fatalf("Key = %q, want key-000502", cur.Key())
	}
}

func TestCursorSeekPastEnd(t *testing.T) {
	tr := newTestTree(t)
	fillSeq(t, tr, 100)
	cur := tr.Cursor()
	ok, err := cur.Seek([]byte("zzz"))
	if err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if ok || cur.Valid() {
		t.Fatal("Seek past end reported valid")
	}
}

func TestCursorFullScanMatchesInsertOrder(t *testing.T) {
	tr := newTestTree(t)
	const n = 2500
	fillSeq(t, tr, n)
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil {
		t.Fatalf("First: %v", err)
	}
	for i := 0; i < n; i++ {
		if !ok {
			t.Fatalf("cursor ended at %d, want %d", i, n)
		}
		want := fmt.Sprintf("key-%06d", i)
		if string(cur.Key()) != want {
			t.Fatalf("key[%d] = %q, want %q", i, cur.Key(), want)
		}
		ok, err = cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if ok {
		t.Fatalf("cursor has extra key %q", cur.Key())
	}
}

func TestCursorPrefixScan(t *testing.T) {
	tr := newTestTree(t)
	for _, term := range []string{"apple", "apply", "banana", "band", "bandit", "cat"} {
		for i := 0; i < 3; i++ {
			k := fmt.Sprintf("%s/%d", term, i)
			if err := tr.Put([]byte(k), []byte("v")); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	cur := tr.Cursor()
	prefix := []byte("band")
	var got []string
	ok, err := cur.SeekPrefix(prefix)
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		got = append(got, string(cur.Key()))
	}
	if err != nil {
		t.Fatalf("prefix scan: %v", err)
	}
	want := []string{"band/0", "band/1", "band/2", "bandit/0", "bandit/1", "bandit/2"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan = %v, want %v", got, want)
		}
	}
	// A prefix with no matches.
	if ok, err := cur.SeekPrefix([]byte("bang")); ok || err != nil {
		t.Fatalf("SeekPrefix(bang) = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestCursorSeekBeforeFirst(t *testing.T) {
	tr := newTestTree(t)
	fillSeq(t, tr, 10)
	cur := tr.Cursor()
	ok, err := cur.Seek([]byte("a")) // all keys start with "key-"
	if err != nil || !ok {
		t.Fatalf("Seek = (%v, %v)", ok, err)
	}
	if string(cur.Key()) != "key-000000" {
		t.Fatalf("Key = %q, want first key", cur.Key())
	}
}

func TestCursorAcrossManyLeaves(t *testing.T) {
	tr := newTestTree(t)
	// Large values force frequent leaf splits, exercising sibling links.
	val := bytes.Repeat([]byte("x"), 1000)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	cur := tr.Cursor()
	count := 0
	ok, err := cur.First()
	for ; ok; ok, err = cur.Next() {
		count++
	}
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if count != n {
		t.Fatalf("scanned %d, want %d", count, n)
	}
}
