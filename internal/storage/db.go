package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
)

// DB is a collection of named trees stored in one page file (or in memory).
type DB struct {
	mu     sync.Mutex
	pager  *pager
	tables map[string]*Tree
	closed bool
}

// Options configures DB opening.
type Options struct {
	// CachePages bounds the decoded-node cache; 0 means the default
	// (16384 pages = 64 MiB).
	CachePages int
	// CacheShards sets how many independently locked shards the node
	// cache is split into (rounded up to a power of two, capped at 256);
	// 0 means the default (16). More shards reduce reader contention;
	// each shard runs its own LRU over CachePages/CacheShards pages.
	CacheShards int
}

// Open opens or creates the database file at path.
func Open(path string, opts *Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	be := &fileBackend{f: f}
	if st.Size() == 0 {
		return initDB(be, opts)
	}
	db, err := OpenBackend(be, opts)
	if err != nil {
		// OpenBackend does not close the backend on failure (the caller
		// may want to inspect it); the file handle is ours to release.
		f.Close()
		return nil, err
	}
	return db, nil
}

// OpenMemory creates a fresh in-memory database.
func OpenMemory() *DB {
	db, err := initDB(&memBackend{}, nil)
	if err != nil {
		// The memory backend cannot fail on init.
		panic("storage: OpenMemory: " + err.Error())
	}
	return db
}

// NewDB initializes a fresh database on an externally supplied backend
// (for example a fault-injecting page store). The backend must be
// empty; its page 0 is overwritten with a fresh meta page. On error the
// backend is closed.
func NewDB(be Backend, opts *Options) (*DB, error) {
	return initDB(be, opts)
}

// OpenBackend opens an existing database image on an externally
// supplied backend: it decodes the meta page, replays any redo journal
// a crashed flush left behind, and loads the catalog. Unlike NewDB it
// leaves the backend open on failure so callers can inspect the image.
func OpenBackend(be Backend, opts *Options) (*DB, error) {
	buf := make([]byte, PageSize)
	if err := be.ReadPage(0, buf); err != nil {
		return nil, err
	}
	m, err := decodeMeta(buf)
	if err != nil {
		return nil, err
	}
	replayed := m.journalHead != nilPage
	if err := replayJournal(be, m); err != nil {
		return nil, fmt.Errorf("storage: journal replay: %w", err)
	}
	db := &DB{tables: make(map[string]*Tree)}
	cache, shards := 0, 0
	if opts != nil {
		cache, shards = opts.CachePages, opts.CacheShards
	}
	db.pager = newPager(be, *m, cache, shards)
	if replayed {
		db.pager.stats.journalReplays.Add(1)
	}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

func initDB(be Backend, opts *Options) (*DB, error) {
	m := meta{version: metaVersion, pageCount: 1, freeHead: nilPage, catalogRoot: nilPage}
	buf := make([]byte, PageSize)
	m.encode(buf)
	if err := be.WritePage(0, buf); err != nil {
		_ = be.Close()
		return nil, err
	}
	db := &DB{tables: make(map[string]*Tree)}
	cache, shards := 0, 0
	if opts != nil {
		cache, shards = opts.CachePages, opts.CacheShards
	}
	db.pager = newPager(be, m, cache, shards)
	return db, nil
}

// catalogTree returns a Tree view over the catalog pages (name -> root id).
func (db *DB) catalogTree() *Tree {
	db.pager.metaMu.Lock()
	root := db.pager.meta.catalogRoot
	db.pager.metaMu.Unlock()
	return &Tree{db: db, name: "\x00catalog", root: root}
}

func (db *DB) loadCatalog() error {
	cat := db.catalogTree()
	cur := cat.Cursor()
	ok, err := cur.First()
	for ; ok; ok, err = cur.Next() {
		name := string(cur.Key())
		v := cur.Value()
		if len(v) != 4 {
			return fmt.Errorf("%w: catalog entry %q", ErrCorrupt, name)
		}
		root := binary.LittleEndian.Uint32(v)
		db.tables[name] = &Tree{db: db, name: name, root: root}
	}
	return err
}

// saveRoot persists t's root page id. The catalog itself is a tree whose
// root lives in the meta page.
func (db *DB) saveRoot(t *Tree) error {
	if t.name == "\x00catalog" {
		db.pager.setCatalogRoot(t.root)
		return nil
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], t.root)
	cat := db.catalogTree()
	if err := cat.Put([]byte(t.name), v[:]); err != nil {
		return err
	}
	db.pager.setCatalogRoot(cat.root)
	return nil
}

// CreateTable creates a new empty table.
func (db *DB) CreateTable(name string) (*Tree, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if name == "" || name[0] == 0 {
		return nil, fmt.Errorf("storage: invalid table name %q", name)
	}
	if _, ok := db.tables[name]; ok {
		return nil, ErrTableExists
	}
	t := &Tree{db: db, name: name, root: nilPage}
	if err := db.saveRoot(t); err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// OpenTable opens an existing table.
func (db *DB) OpenTable(name string) (*Tree, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// EnsureTable opens the table, creating it if absent.
func (db *DB) EnsureTable(name string) (*Tree, error) {
	t, err := db.OpenTable(name)
	if err == nil {
		return t, nil
	}
	t, err = db.CreateTable(name)
	if err == ErrTableExists {
		return db.OpenTable(name)
	}
	return t, err
}

// Tables lists table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Flush writes all dirty pages and the meta page to the backend.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.pager.flush()
}

// Close flushes and releases the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.pager.close()
}

// Stats returns a snapshot of the I/O counters.
func (db *DB) Stats() Stats { return db.pager.statsSnapshot() }

// CacheShardStats returns per-shard node-cache counters in shard order,
// for telemetry on cache balance and occupancy.
func (db *DB) CacheShardStats() []ShardStats { return db.pager.shardStatsSnapshot() }

// CacheShardCount returns how many shards the node cache is split into.
func (db *DB) CacheShardCount() int { return len(db.pager.shards) }

// CacheShardStat returns shard i's counters without snapshotting every
// shard (the per-shard scrape path).
func (db *DB) CacheShardStat(i int) ShardStats { return db.pager.shardStat(i) }

// PageCount returns the number of pages in the file, a direct measure of
// disk usage (PageCount * PageSize bytes).
func (db *DB) PageCount() uint32 {
	db.pager.metaMu.Lock()
	defer db.pager.metaMu.Unlock()
	return db.pager.meta.pageCount
}
