// Package storage implements the ordered key/value storage engine that
// backs every TReX index table.
//
// The original TReX prototype stored its four indexed tables (Elements,
// PostingLists, RPLs and ERPLs) in BerkeleyDB B-trees. This package is the
// pure-Go substitute: a single-file, page-based B+tree store that provides
// the two access paths those tables need:
//
//   - keyed lookup (Get), and
//   - ordered sequential access from an arbitrary start key (Cursor.Seek
//     followed by Cursor.Next), which is what the ERA, TA and Merge
//     iterators are built on.
//
// A DB holds any number of named trees (tables). All keys and values are
// opaque byte slices; key order is plain bytes.Compare, so callers encode
// composite keys with order-preserving codecs (see package index).
//
// Concurrency model: a DB is safe for concurrent readers OR a single
// writer; it does not implement transactions or a WAL. TReX tables are
// bulk-built once and then read-mostly, matching how the paper uses BDB.
//
// Durability: pages are written through an LRU page cache; Flush writes
// all dirty pages and the meta page. The file format is checksummed
// (meta page) and versioned.
package storage
