package storage

import "errors"

var (
	// ErrNotFound is returned by Get when the key is absent.
	ErrNotFound = errors.New("storage: key not found")
	// ErrKeyTooLarge is returned when a key exceeds MaxKeySize.
	ErrKeyTooLarge = errors.New("storage: key too large")
	// ErrValueTooLarge is returned when a value exceeds MaxValueSize.
	// Callers that need large values (posting lists) fragment them across
	// multiple keys, exactly as the paper fragments PostingLists tuples.
	ErrValueTooLarge = errors.New("storage: value too large")
	// ErrEmptyKey is returned when a key is empty.
	ErrEmptyKey = errors.New("storage: empty key")
	// ErrClosed is returned when operating on a closed DB.
	ErrClosed = errors.New("storage: database closed")
	// ErrCorrupt is returned when on-disk structures fail validation.
	ErrCorrupt = errors.New("storage: corrupt database")
	// ErrTableExists is returned by CreateTable for a duplicate name.
	ErrTableExists = errors.New("storage: table already exists")
	// ErrNoSuchTable is returned by OpenTable for an unknown name.
	ErrNoSuchTable = errors.New("storage: no such table")
	// ErrUnsorted is returned by the bulk loader when input order is violated.
	ErrUnsorted = errors.New("storage: bulk load input not strictly ascending")
)
