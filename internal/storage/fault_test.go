package storage

import (
	"errors"
	"fmt"
	"testing"
)

// faultBackend wraps a backend and fails I/O after a countdown, injecting
// the kind of partial-failure a full disk or dying device produces.
type faultBackend struct {
	inner      backend
	writesLeft int
	readsLeft  int
}

var errInjected = errors.New("injected I/O fault")

func (f *faultBackend) readPage(id uint32, buf []byte) error {
	if f.readsLeft == 0 {
		return errInjected
	}
	if f.readsLeft > 0 {
		f.readsLeft--
	}
	return f.inner.readPage(id, buf)
}

func (f *faultBackend) writePage(id uint32, buf []byte) error {
	if f.writesLeft == 0 {
		return errInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	return f.inner.writePage(id, buf)
}

func (f *faultBackend) sync() error  { return f.inner.sync() }
func (f *faultBackend) close() error { return f.inner.close() }

// newFaultDB builds an in-memory DB whose backend fails after the given
// operation budgets (-1 = unlimited).
func newFaultDB(t *testing.T, writes, reads int) (*DB, *faultBackend) {
	t.Helper()
	fb := &faultBackend{inner: &memBackend{}, writesLeft: writes, readsLeft: reads}
	db, err := initDB(fb, nil)
	if err != nil {
		t.Fatalf("initDB: %v", err)
	}
	return db, fb
}

func TestWriteFaultSurfacesOnFlush(t *testing.T) {
	db, fb := newFaultDB(t, -1, -1)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fb.writesLeft = 0 // disk dies now
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite write faults")
	}
	// The DB is still readable in memory.
	if _, err := tr.Get([]byte("k0001")); err != nil {
		t.Fatalf("Get after failed flush: %v", err)
	}
}

func TestReadFaultSurfacesOnGet(t *testing.T) {
	// Use a tiny cache so gets must touch the backend.
	fb := &faultBackend{inner: &memBackend{}, writesLeft: -1, readsLeft: -1}
	db, err := initDB(fb, &Options{CachePages: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fb.readsLeft = 0
	sawErr := false
	for i := 0; i < 3000; i += 101 {
		if _, err := tr.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			if err == ErrNotFound {
				t.Fatalf("fault surfaced as ErrNotFound — data-loss lie")
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no read ever touched the failing backend (cache too large?)")
	}
}

func TestCursorFaultPropagates(t *testing.T) {
	fb := &faultBackend{inner: &memBackend{}, writesLeft: -1, readsLeft: -1}
	db, err := initDB(fb, &Options{CachePages: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil || !ok {
		t.Fatalf("First = %v, %v", ok, err)
	}
	fb.readsLeft = 2 // let a couple of leaf loads through, then fail
	for {
		ok, err = cur.Next()
		if err != nil {
			return // fault surfaced as an error: correct behavior
		}
		if !ok {
			t.Fatal("cursor ended cleanly despite read faults")
		}
	}
}

func TestBulkLoadWriteFault(t *testing.T) {
	db, fb := newFaultDB(t, -1, -1)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	bl, err := tr.NewBulkLoader(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("k%08d", i)), []byte("v")); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	fb.writesLeft = 3
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite exhausted write budget")
	}
}
