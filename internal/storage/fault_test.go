package storage_test

// Fault-path tests for the storage layer, driven by the shared
// internal/faultinject backend (one injection implementation for the
// whole repo). They live outside the package because faultinject
// imports storage; the exported NewDB/OpenBackend surface is what any
// external instrumented backend goes through.

import (
	"errors"
	"fmt"
	"testing"

	"trex/internal/faultinject"
	"trex/internal/storage"
)

// newFaultDB builds a DB over a fresh fault-injection disk.
func newFaultDB(t *testing.T, opts *storage.Options) (*storage.DB, *faultinject.Disk) {
	t.Helper()
	d := faultinject.NewDisk(1)
	db, err := storage.NewDB(d, opts)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db, d
}

// reopen opens the surviving image of d as a fresh process would.
func reopen(t *testing.T, d *faultinject.Disk) (*storage.DB, *faultinject.Disk) {
	t.Helper()
	nd := d.Snapshot()
	db, err := storage.OpenBackend(nd, nil)
	if err != nil {
		t.Fatalf("OpenBackend: %v", err)
	}
	return db, nd
}

func TestWriteFaultSurfacesOnFlush(t *testing.T) {
	db, d := newFaultDB(t, nil)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	d.FailWritesAfter(0) // disk dies now
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite write faults")
	}
	// The DB is still readable in memory.
	if _, err := tr.Get([]byte("k0001")); err != nil {
		t.Fatalf("Get after failed flush: %v", err)
	}
	// A failed flush must be retryable: heal the disk, flush again, and
	// the reopened image must hold everything.
	d.Heal()
	if err := db.Flush(); err != nil {
		t.Fatalf("retried Flush: %v", err)
	}
	db2, _ := reopen(t, d)
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 7 {
		if _, err := tr2.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("Get k%04d after retry+reopen: %v", i, err)
		}
	}
}

func TestReadFaultSurfacesOnGet(t *testing.T) {
	// Use a tiny cache so gets must touch the backend.
	db, d := newFaultDB(t, &storage.Options{CachePages: 9})
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	d.FailReadsAfter(0)
	sawErr := false
	for i := 0; i < 3000; i += 101 {
		if _, err := tr.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			if errors.Is(err, storage.ErrNotFound) {
				t.Fatalf("fault surfaced as ErrNotFound — data-loss lie")
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no read ever touched the failing backend (cache too large?)")
	}
}

func TestCursorFaultPropagates(t *testing.T) {
	db, d := newFaultDB(t, &storage.Options{CachePages: 9})
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil || !ok {
		t.Fatalf("First = %v, %v", ok, err)
	}
	d.FailReadsAfter(2) // let a couple of leaf loads through, then fail
	for {
		ok, err = cur.Next()
		if err != nil {
			return // fault surfaced as an error: correct behavior
		}
		if !ok {
			t.Fatal("cursor ended cleanly despite read faults")
		}
	}
}

func TestBulkLoadWriteFault(t *testing.T) {
	db, d := newFaultDB(t, nil)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	bl, err := tr.NewBulkLoader(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("k%08d", i)), []byte("v")); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	d.FailWritesAfter(3)
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite exhausted write budget")
	}
	// The latent gap the old ad-hoc backend never covered: after a write
	// fault mid-bulk-flush, the load must still be recoverable — heal,
	// re-flush, reopen, and every bulk-loaded key must be there.
	d.Heal()
	if err := db.Flush(); err != nil {
		t.Fatalf("retried Flush after bulk-load fault: %v", err)
	}
	db2, _ := reopen(t, d)
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i += 997 {
		if _, err := tr2.Get([]byte(fmt.Sprintf("k%08d", i))); err != nil {
			t.Fatalf("Get k%08d after bulk-load retry: %v", i, err)
		}
	}
	if n, err := tr2.Len(); err != nil || n != 20000 {
		t.Fatalf("reopened bulk-loaded table has %d keys, want 20000", n)
	}
}

func TestENOSPCSurfacesAndRetries(t *testing.T) {
	db, d := newFaultDB(t, nil)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("vvvvvvvv")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	d.LimitPages(d.Pages() + 2) // room for a couple more pages, not all
	err = db.Flush()
	if err == nil {
		t.Fatal("Flush succeeded past the page quota")
	}
	if !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("Flush error = %v, want ErrNoSpace", err)
	}
	// The operator frees disk space; the same flush must now commit.
	d.LimitPages(-1)
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after freeing space: %v", err)
	}
	db2, _ := reopen(t, d)
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tr2.Len(); err != nil || n != 2000 {
		t.Fatalf("reopened table has %d keys, want 2000", n)
	}
}

func TestSyncFaultSurfacesOnFlush(t *testing.T) {
	db, d := newFaultDB(t, nil)
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d.FailSyncAt(1)
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite fsync failure")
	}
	// fsync failures must not poison the in-memory state either.
	if err := db.Flush(); err != nil {
		t.Fatalf("retried Flush after fsync failure: %v", err)
	}
	db2, _ := reopen(t, d)
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tr2.Len(); err != nil || n != 200 {
		t.Fatalf("reopened table has %d keys, want 200", n)
	}
}

// TestTornWriteNeverLiesSilently tears one page write per trial and
// asserts the reopened store either still serves exactly the committed
// data (the tear landed on a page the committed state does not read) or
// fails with ErrCorrupt — never a silent wrong answer. The page CRC is
// what turns a torn sector into a detectable error.
func TestTornWriteNeverLiesSilently(t *testing.T) {
	const keys = 800
	detected := 0
	for k := 1; k <= 12; k++ {
		d := faultinject.NewDisk(int64(k))
		db, err := storage.NewDB(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := db.CreateTable("t")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		d.TornWriteAt(k)
		_ = db.Flush() // the disk lies: the torn write reports success

		nd := d.Snapshot()
		db2, err := storage.OpenBackend(nd, nil)
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("k=%d: open error %v, want ErrCorrupt", k, err)
			}
			detected++
			continue
		}
		tr2, err := db2.OpenTable("t")
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("k=%d: OpenTable error %v, want ErrCorrupt", k, err)
			}
			detected++
			continue
		}
		seen := 0
		cur := tr2.Cursor()
		ok, err := cur.First()
		for ok && err == nil {
			seen++
			ok, err = cur.Next()
		}
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("k=%d: scan error %v, want ErrCorrupt", k, err)
			}
			detected++
			continue
		}
		if seen != keys {
			t.Fatalf("k=%d: torn write silently dropped data: %d keys, want %d", k, seen, keys)
		}
	}
	if detected == 0 {
		t.Fatal("no torn write was ever detected — CRC trailer not doing its job")
	}
}
