package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the unit of disk I/O. All pages are exactly this size on disk.
const PageSize = 4096

// pagePayload is the space available to node content: the final 4 bytes
// of every page hold a CRC32 of the rest, so torn writes and bit rot
// surface as ErrCorrupt instead of silent wrong answers.
const pagePayload = PageSize - 4

// Size limits derive from the requirement that a leaf page must hold at
// least two cells and a branch page at least two children.
const (
	// MaxKeySize is the largest key the store accepts.
	MaxKeySize = 512
	// MaxValueSize is the largest value the store accepts. Larger logical
	// records (posting lists) are fragmented by the caller.
	MaxValueSize = 3072
)

// Page type tags (first byte of an encoded page).
const (
	pageMeta    = 0x4D // 'M'
	pageLeaf    = 0x4C // 'L'
	pageBranch  = 0x42 // 'B'
	pageFree    = 0x46 // 'F'
	pageJournal = 0x4A // 'J' — redo-journal header (see pager.flush)
)

const (
	metaMagic = "TREXDB01"
	// metaVersion 2 added journalHead to the meta page (the redo journal
	// that makes flush an atomic commit). There are no persisted v1 files
	// to migrate; v1 images are rejected as unsupported.
	metaVersion = 2
	// nilPage marks "no page" (page 0 is the meta page, never a node).
	nilPage = uint32(0)
)

// Journal header layout: [0] pageJournal, [1:5] next header page
// (nilPage terminates the chain), [5:9] entry count, then count entries
// of (targetPage uint32, contentPage uint32) — replay copies the raw
// page image at contentPage over targetPage. The page CRC does not
// cover the page id, so a sealed image is position-independent and can
// be staged at one id and applied at another.
const (
	journalHeaderSize = 1 + 4 + 4
	journalEntrySize  = 8
	journalMaxEntries = (pagePayload - journalHeaderSize) / journalEntrySize
)

// leafHeaderSize and per-cell overheads used for capacity accounting.
const (
	nodeHeaderSize  = 1 + 2 + 4 // type + nkeys + next/child0
	leafCellFixed   = 2 + 2     // klen + vlen
	branchCellFixed = 2 + 4     // klen + child
)

// cell is one key/value pair in a leaf.
type cell struct {
	key []byte
	val []byte
}

// node is the in-memory representation of a leaf or branch page. The pager
// caches decoded nodes and encodes them back to PageSize buffers on flush.
type node struct {
	id     uint32
	isLeaf bool
	dirty  bool

	// Leaf fields.
	cells []cell
	next  uint32 // right sibling leaf, nilPage at the rightmost leaf

	// Branch fields. len(children) == len(keys)+1. keys[i] is the smallest
	// key reachable under children[i+1].
	keys     [][]byte
	children []uint32
}

// encodedSize returns the number of bytes the node occupies when encoded.
func (n *node) encodedSize() int {
	size := nodeHeaderSize
	if n.isLeaf {
		for i := range n.cells {
			size += leafCellFixed + len(n.cells[i].key) + len(n.cells[i].val)
		}
		return size
	}
	for i := range n.keys {
		size += branchCellFixed + len(n.keys[i])
	}
	return size
}

// overfull reports whether the node no longer fits in a page and must split.
func (n *node) overfull() bool { return n.encodedSize() > pagePayload }

// sealPage writes the payload checksum into buf's trailer.
func sealPage(buf []byte) {
	binary.LittleEndian.PutUint32(buf[pagePayload:], crc32.ChecksumIEEE(buf[:pagePayload]))
}

// verifyPage checks the payload checksum.
func verifyPage(id uint32, buf []byte) error {
	want := binary.LittleEndian.Uint32(buf[pagePayload:])
	if crc32.ChecksumIEEE(buf[:pagePayload]) != want {
		return fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, id)
	}
	return nil
}

// encode serializes the node into buf, which must be PageSize bytes.
func (n *node) encode(buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: encode buffer must be %d bytes", PageSize)
	}
	if n.encodedSize() > pagePayload {
		return fmt.Errorf("storage: node %d overflows page (%d bytes, leaf=%v, cells=%d, keys=%d)", n.id, n.encodedSize(), n.isLeaf, len(n.cells), len(n.keys))
	}
	clear(buf)
	defer sealPage(buf)
	if n.isLeaf {
		buf[0] = pageLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.cells)))
		binary.LittleEndian.PutUint32(buf[3:7], n.next)
		off := nodeHeaderSize
		for i := range n.cells {
			c := &n.cells[i]
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(c.key)))
			binary.LittleEndian.PutUint16(buf[off+2:], uint16(len(c.val)))
			off += leafCellFixed
			off += copy(buf[off:], c.key)
			off += copy(buf[off:], c.val)
		}
		return nil
	}
	buf[0] = pageBranch
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	child0 := nilPage
	if len(n.children) > 0 {
		// A branch can transiently have zero children while deletions
		// unwind; such nodes are reclaimed before they are ever read
		// back, but an eviction may still write them out.
		child0 = n.children[0]
	}
	binary.LittleEndian.PutUint32(buf[3:7], child0)
	off := nodeHeaderSize
	for i := range n.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
		binary.LittleEndian.PutUint32(buf[off+2:], n.children[i+1])
		off += branchCellFixed
		off += copy(buf[off:], n.keys[i])
	}
	return nil
}

// decodeNode parses a page buffer into a node with the given id.
func decodeNode(id uint32, buf []byte) (*node, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("%w: short page %d", ErrCorrupt, id)
	}
	if err := verifyPage(id, buf); err != nil {
		return nil, err
	}
	n := &node{id: id}
	switch buf[0] {
	case pageLeaf:
		n.isLeaf = true
		nk := int(binary.LittleEndian.Uint16(buf[1:3]))
		n.next = binary.LittleEndian.Uint32(buf[3:7])
		n.cells = make([]cell, 0, nk)
		off := nodeHeaderSize
		for i := 0; i < nk; i++ {
			if off+leafCellFixed > PageSize {
				return nil, fmt.Errorf("%w: leaf %d cell %d header", ErrCorrupt, id, i)
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			vl := int(binary.LittleEndian.Uint16(buf[off+2:]))
			off += leafCellFixed
			if off+kl+vl > PageSize {
				return nil, fmt.Errorf("%w: leaf %d cell %d body", ErrCorrupt, id, i)
			}
			k := make([]byte, kl)
			copy(k, buf[off:off+kl])
			off += kl
			v := make([]byte, vl)
			copy(v, buf[off:off+vl])
			off += vl
			n.cells = append(n.cells, cell{key: k, val: v})
		}
		return n, nil
	case pageBranch:
		nk := int(binary.LittleEndian.Uint16(buf[1:3]))
		n.keys = make([][]byte, 0, nk)
		n.children = make([]uint32, 1, nk+1)
		n.children[0] = binary.LittleEndian.Uint32(buf[3:7])
		off := nodeHeaderSize
		for i := 0; i < nk; i++ {
			if off+branchCellFixed > PageSize {
				return nil, fmt.Errorf("%w: branch %d cell %d header", ErrCorrupt, id, i)
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			child := binary.LittleEndian.Uint32(buf[off+2:])
			off += branchCellFixed
			if off+kl > PageSize {
				return nil, fmt.Errorf("%w: branch %d cell %d body", ErrCorrupt, id, i)
			}
			k := make([]byte, kl)
			copy(k, buf[off:off+kl])
			off += kl
			n.keys = append(n.keys, k)
			n.children = append(n.children, child)
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: page %d has unknown type 0x%02x", ErrCorrupt, id, buf[0])
	}
}

// meta is the content of page 0. Writing page 0 is the commit point of
// every flush: all state a reopened DB trusts is reachable from here.
type meta struct {
	version     uint32
	pageCount   uint32 // number of pages in the file, including meta
	freeHead    uint32 // head of the free-page chain, nilPage if empty
	catalogRoot uint32 // root page of the catalog tree, nilPage if empty
	journalHead uint32 // first redo-journal header page, nilPage when no
	// replay is pending; always beyond pageCount when set
}

func (m *meta) encode(buf []byte) {
	clear(buf)
	buf[0] = pageMeta
	copy(buf[1:9], metaMagic)
	binary.LittleEndian.PutUint32(buf[9:13], m.version)
	binary.LittleEndian.PutUint32(buf[13:17], m.pageCount)
	binary.LittleEndian.PutUint32(buf[17:21], m.freeHead)
	binary.LittleEndian.PutUint32(buf[21:25], m.catalogRoot)
	binary.LittleEndian.PutUint32(buf[25:29], m.journalHead)
	sum := crc32.ChecksumIEEE(buf[:29])
	binary.LittleEndian.PutUint32(buf[29:33], sum)
}

func decodeMeta(buf []byte) (*meta, error) {
	if len(buf) != PageSize || buf[0] != pageMeta || string(buf[1:9]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta page", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(buf[29:33])
	if crc32.ChecksumIEEE(buf[:29]) != want {
		return nil, fmt.Errorf("%w: meta checksum mismatch", ErrCorrupt)
	}
	m := &meta{
		version:     binary.LittleEndian.Uint32(buf[9:13]),
		pageCount:   binary.LittleEndian.Uint32(buf[13:17]),
		freeHead:    binary.LittleEndian.Uint32(buf[17:21]),
		catalogRoot: binary.LittleEndian.Uint32(buf[21:25]),
		journalHead: binary.LittleEndian.Uint32(buf[25:29]),
	}
	if m.version != metaVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, m.version)
	}
	return m, nil
}
