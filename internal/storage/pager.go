package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Stats counts physical and logical I/O performed by a DB. The retrieval
// experiments use these counters as a machine-independent cost model:
// relative method performance is reported in pages read as well as time.
type Stats struct {
	PagesRead    uint64 // pages fetched from the backend
	PagesWritten uint64 // pages written to the backend
	CacheHits    uint64 // node lookups served from the page cache
	CacheMisses  uint64 // node lookups that required a backend read
	Seeks        uint64 // cursor Seek operations
	Nexts        uint64 // cursor Next operations
	Gets         uint64 // point lookups
	Puts         uint64 // insertions/updates

	Flushes        uint64 // successful atomic commits
	JournalPages   uint64 // live pages staged through the redo journal
	JournalReplays uint64 // pending journals replayed at open
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PagesRead += other.PagesRead
	s.PagesWritten += other.PagesWritten
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.Seeks += other.Seeks
	s.Nexts += other.Nexts
	s.Gets += other.Gets
	s.Puts += other.Puts
	s.Flushes += other.Flushes
	s.JournalPages += other.JournalPages
	s.JournalReplays += other.JournalReplays
}

// Sub returns s minus other, for measuring a window of activity.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		PagesRead:      s.PagesRead - other.PagesRead,
		PagesWritten:   s.PagesWritten - other.PagesWritten,
		CacheHits:      s.CacheHits - other.CacheHits,
		CacheMisses:    s.CacheMisses - other.CacheMisses,
		Seeks:          s.Seeks - other.Seeks,
		Nexts:          s.Nexts - other.Nexts,
		Gets:           s.Gets - other.Gets,
		Puts:           s.Puts - other.Puts,
		Flushes:        s.Flushes - other.Flushes,
		JournalPages:   s.JournalPages - other.JournalPages,
		JournalReplays: s.JournalReplays - other.JournalReplays,
	}
}

// pagerStats is the live, concurrently-updated form of Stats. Each counter
// is independently atomic, so hot paths (one cursor step touches up to
// four counters) never serialize on a lock; statsSnapshot assembles a
// Stats from atomic loads, so no individual field is ever torn, though a
// snapshot taken mid-operation may be skewed by the operations in flight
// (a miss may be counted before its PagesRead, never the reverse).
type pagerStats struct {
	pagesRead      atomic.Uint64
	pagesWritten   atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	seeks          atomic.Uint64
	nexts          atomic.Uint64
	gets           atomic.Uint64
	puts           atomic.Uint64
	flushes        atomic.Uint64
	journalPages   atomic.Uint64
	journalReplays atomic.Uint64
}

func (ps *pagerStats) snapshot() Stats {
	return Stats{
		PagesRead:      ps.pagesRead.Load(),
		PagesWritten:   ps.pagesWritten.Load(),
		CacheHits:      ps.cacheHits.Load(),
		CacheMisses:    ps.cacheMisses.Load(),
		Seeks:          ps.seeks.Load(),
		Nexts:          ps.nexts.Load(),
		Gets:           ps.gets.Load(),
		Puts:           ps.puts.Load(),
		Flushes:        ps.flushes.Load(),
		JournalPages:   ps.journalPages.Load(),
		JournalReplays: ps.journalReplays.Load(),
	}
}

// Backend is the raw page I/O abstraction under the pager. ReadPage and
// WritePage may be called concurrently (reads with reads, and reads with
// writes to other pages); implementations must tolerate that. It is
// exported so external packages (notably internal/faultinject) can
// supply instrumented backends to NewDB/OpenBackend.
type Backend interface {
	// ReadPage fills buf (PageSize bytes) with the content of page id.
	ReadPage(id uint32, buf []byte) error
	// WritePage persists buf (PageSize bytes) as the content of page id.
	WritePage(id uint32, buf []byte) error
	// Sync makes all preceding writes durable; flush ordering (data
	// before journal before meta) relies on it as a write barrier.
	Sync() error
	// Close releases the backend.
	Close() error
}

// fileBackend stores pages in a single OS file at offset id*PageSize.
// ReadAt/WriteAt are safe for concurrent use by the os package contract.
type fileBackend struct {
	f *os.File
}

func (fb *fileBackend) ReadPage(id uint32, buf []byte) error {
	_, err := fb.f.ReadAt(buf, int64(id)*PageSize)
	if err == io.EOF {
		return fmt.Errorf("%w: page %d beyond EOF", ErrCorrupt, id)
	}
	return err
}

func (fb *fileBackend) WritePage(id uint32, buf []byte) error {
	_, err := fb.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

func (fb *fileBackend) Sync() error  { return fb.f.Sync() }
func (fb *fileBackend) Close() error { return fb.f.Close() }

// memBackend stores pages in memory; used for tests and small corpora.
// The RWMutex makes concurrent readers safe against the slice growth a
// concurrent WritePage can trigger (readers no longer serialize behind a
// single pager lock, so the backend must provide its own safety).
type memBackend struct {
	mu    sync.RWMutex
	pages [][]byte
}

func (mb *memBackend) ReadPage(id uint32, buf []byte) error {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	if int(id) >= len(mb.pages) || mb.pages[id] == nil {
		return fmt.Errorf("%w: page %d not written", ErrCorrupt, id)
	}
	copy(buf, mb.pages[id])
	return nil
}

func (mb *memBackend) WritePage(id uint32, buf []byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for int(id) >= len(mb.pages) {
		mb.pages = append(mb.pages, nil)
	}
	p := make([]byte, PageSize)
	copy(p, buf)
	mb.pages[id] = p
	return nil
}

func (mb *memBackend) Sync() error { return nil }

func (mb *memBackend) Close() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.pages = nil
	return nil
}

// pageBufPool recycles PageSize scratch buffers for backend reads and
// node encoding, which previously allocated a fresh 4 KiB slice per page
// touched on a cache miss, flush, or free.
var pageBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, PageSize)
		return &b
	},
}

func getPageBuf() *[]byte  { return pageBufPool.Get().(*[]byte) }
func putPageBuf(b *[]byte) { pageBufPool.Put(b) }

// cacheShard is one independently locked slice of the decoded-node cache.
type cacheShard struct {
	mu    sync.Mutex
	nodes map[uint32]*list.Element // id -> element whose Value is *node
	lru   *list.List               // front = most recently used
	max   int

	// Per-shard lookup counters, maintained alongside the global ones so
	// telemetry can expose shard balance (a hot shard means the id→shard
	// spread is degenerate for the workload). Atomic: bumped outside mu.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// ShardStats reports one cache shard's lookup traffic and occupancy.
type ShardStats struct {
	Hits   uint64 // lookups served from this shard
	Misses uint64 // lookups that went to the backend
	Len    int    // decoded nodes currently resident
	Max    int    // shard LRU capacity
}

// pager mediates between node-level operations and the page backend. It
// keeps an LRU cache of decoded nodes, allocates and frees pages, and
// tracks dirty nodes until flush.
//
// The cache is sharded by page id so concurrent readers on different
// pages never contend: a node lookup takes only its shard's mutex, I/O
// counters are atomic, and page allocation/free (write path only) takes
// metaMu. Lock ordering: a shard mutex and metaMu are never held at the
// same time.
//
// Crash consistency: flush is an atomic commit. Pages that were part of
// the last committed state ("live", id < commitBase) are never
// overwritten in place before the commit point — they are staged in a
// redo journal beyond the logical end of the file, the meta page is
// written with journalHead set (the commit point), and only then are
// they applied in place. Open replays a pending journal, so a crash at
// any page-write boundary leaves the store at exactly the pre-flush or
// post-flush state. Pages allocated since the last commit ("fresh",
// id >= commitBase) are invisible to the committed state and may be
// written directly at any time.
type pager struct {
	be     Backend
	shards []cacheShard
	mask   uint32 // len(shards)-1; shard count is a power of two

	metaMu sync.Mutex // guards meta (pageCount, freeHead, catalogRoot)
	meta   meta
	// pendingFree holds pages released since the last commit. Freeing a
	// live page in place would corrupt the committed tree on crash, so
	// frees are deferred: the pages are reusable immediately in memory
	// (allocPageLocked pops them first) and join the durable free chain
	// at the next flush. Guarded by metaMu.
	pendingFree []uint32
	// commitBase is meta.pageCount as of the last successful commit (or
	// open). Read on the eviction path under a shard lock, so it is
	// atomic rather than metaMu-guarded.
	commitBase atomic.Uint32

	stats  pagerStats
	closed atomic.Bool
}

// defaultCachePages bounds the decoded-node cache. At 4 KiB pages this is
// a 64 MiB working set, comparable to the paper's BDB cache configuration.
const defaultCachePages = 16384

// defaultCacheShards is the shard count for default-sized caches: enough
// that a handful of CPUs rarely collide on a shard mutex, small enough
// that per-shard LRU capacity stays meaningful.
const defaultCacheShards = 16

// minShardPages keeps each shard's LRU large enough to be useful; tiny
// caches get fewer shards rather than degenerate one-page LRUs.
const minShardPages = 8

func newPager(be Backend, m meta, maxCache, shardCount int) *pager {
	if maxCache <= 8 {
		maxCache = defaultCachePages
	}
	if shardCount <= 0 {
		shardCount = defaultCacheShards
	}
	// Round up to a power of two so shard selection is a mask, and shrink
	// until every shard holds at least minShardPages.
	n := 1
	for n < shardCount && n < 256 {
		n <<= 1
	}
	for n > 1 && maxCache/n < minShardPages {
		n >>= 1
	}
	perShard := (maxCache + n - 1) / n
	p := &pager{
		be:     be,
		meta:   m,
		shards: make([]cacheShard, n),
		mask:   uint32(n - 1),
	}
	for i := range p.shards {
		p.shards[i] = cacheShard{
			nodes: make(map[uint32]*list.Element),
			lru:   list.New(),
			max:   perShard,
		}
	}
	p.commitBase.Store(m.pageCount)
	return p
}

func (p *pager) shard(id uint32) *cacheShard {
	// Consecutive pages land in different shards, which spreads the
	// sequential leaf chains cursors walk across all shard mutexes.
	return &p.shards[id&p.mask]
}

// node returns the decoded node for id, loading it from the backend on
// miss. Safe for any number of concurrent callers; the backend read and
// decode happen outside the shard lock, so misses on different pages
// proceed in parallel.
func (p *pager) node(id uint32) (*node, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if el, ok := sh.nodes[id]; ok {
		sh.lru.MoveToFront(el)
		n := el.Value.(*node)
		sh.mu.Unlock()
		p.stats.cacheHits.Add(1)
		sh.hits.Add(1)
		return n, nil
	}
	sh.mu.Unlock()

	p.stats.cacheMisses.Add(1)
	sh.misses.Add(1)
	bufp := getPageBuf()
	err := p.be.ReadPage(id, *bufp)
	if err != nil {
		putPageBuf(bufp)
		return nil, err
	}
	p.stats.pagesRead.Add(1)
	n, err := decodeNode(id, *bufp)
	putPageBuf(bufp)
	if err != nil {
		return nil, err
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.nodes[id]; ok {
		// Another reader missed on the same page and inserted first; the
		// cached copy is canonical (it may have been dirtied since).
		sh.lru.MoveToFront(el)
		return el.Value.(*node), nil
	}
	p.insertShardLocked(sh, n)
	return n, nil
}

func (p *pager) insertShardLocked(sh *cacheShard, n *node) {
	el := sh.lru.PushFront(n)
	sh.nodes[n.id] = el
	base := p.commitBase.Load()
	scan := sh.lru.Back()
	// Bound the eviction scan so a shard full of pinned pages degrades to
	// cache growth (the safe failure mode) instead of an O(n) walk per
	// insert.
	for attempts := 0; sh.lru.Len() > sh.max && scan != nil && attempts < 32; attempts++ {
		victim := scan.Value.(*node)
		prev := scan.Prev()
		if victim.dirty {
			if victim.id < base {
				// A dirty live page is pinned until the next flush commits
				// it via the journal: writing it through here would
				// overwrite committed state in place, and concurrent
				// readers rely on the cache holding the newest copy while
				// the flush applies the journal to the backend.
				scan = prev
				continue
			}
			// Dirty fresh pages are invisible to the committed state, so
			// write-through eviction is always safe.
			if err := p.writeNode(victim); err != nil {
				// Keep the node cached rather than lose data. Growing past
				// max under write errors is the safe failure mode.
				return
			}
			victim.dirty = false
		}
		sh.lru.Remove(scan)
		delete(sh.nodes, victim.id)
		scan = prev
	}
}

func (p *pager) writeNode(n *node) error {
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	if err := n.encode(*bufp); err != nil {
		return err
	}
	if err := p.be.WritePage(n.id, *bufp); err != nil {
		return err
	}
	p.stats.pagesWritten.Add(1)
	return nil
}

// allocNode creates a new node backed by a fresh page.
func (p *pager) allocNode(isLeaf bool) (*node, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	p.metaMu.Lock()
	id, err := p.allocPageLocked()
	p.metaMu.Unlock()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, isLeaf: isLeaf, dirty: true}
	sh := p.shard(id)
	sh.mu.Lock()
	p.insertShardLocked(sh, n)
	sh.mu.Unlock()
	return n, nil
}

func (p *pager) allocPageLocked() (uint32, error) {
	// Reuse pages freed since the last commit first: they are free in
	// memory but not yet on the durable chain, so popping them here keeps
	// page-count growth bounded across drop/rebuild cycles even when the
	// caller never flushes in between.
	if n := len(p.pendingFree); n > 0 {
		id := p.pendingFree[n-1]
		p.pendingFree = p.pendingFree[:n-1]
		return id, nil
	}
	if p.meta.freeHead != nilPage {
		id := p.meta.freeHead
		bufp := getPageBuf()
		defer putPageBuf(bufp)
		buf := *bufp
		if err := p.be.ReadPage(id, buf); err != nil {
			return 0, err
		}
		p.stats.pagesRead.Add(1)
		if err := verifyPage(id, buf); err != nil {
			return 0, err
		}
		if buf[0] != pageFree {
			return 0, fmt.Errorf("%w: free list points at non-free page %d", ErrCorrupt, id)
		}
		p.meta.freeHead = binary.LittleEndian.Uint32(buf[1:5])
		return id, nil
	}
	id := p.meta.pageCount
	p.meta.pageCount++
	return id, nil
}

// freeNode releases the node's page. The free is deferred: writing the
// free-chain link in place here would clobber committed state if the
// process died before the enclosing operation's flush, so the page only
// joins the durable chain when flush commits. Until then it is reusable
// through pendingFree.
func (p *pager) freeNode(n *node) error {
	if p.closed.Load() {
		return ErrClosed
	}
	sh := p.shard(n.id)
	sh.mu.Lock()
	if el, ok := sh.nodes[n.id]; ok {
		sh.lru.Remove(el)
		delete(sh.nodes, n.id)
	}
	sh.mu.Unlock()

	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	p.pendingFree = append(p.pendingFree, n.id)
	return nil
}

// markDirty flags a node for write-out at the next flush and (re)registers
// it in the cache. Re-registration matters: callers hold node pointers
// across other page loads, and a load may have evicted this node — the
// mutated copy must be the one the cache serves and the flusher sees.
func (p *pager) markDirty(n *node) {
	sh := p.shard(n.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n.dirty = true
	if el, ok := sh.nodes[n.id]; ok {
		if el.Value.(*node) == n {
			sh.lru.MoveToFront(el)
			return
		}
		// A stale copy was re-read after eviction; ours is the newest.
		sh.lru.Remove(el)
		delete(sh.nodes, n.id)
	}
	p.insertShardLocked(sh, n)
}

// pageImage is a sealed page staged for the journaled part of a flush.
type pageImage struct {
	id  uint32
	buf []byte
}

// flush commits all dirty state atomically. Like all write-path
// operations it must not run concurrently with other writes; concurrent
// readers are safe (each shard is locked while scanned, and dirty live
// pages stay pinned in the cache until the commit completes, so readers
// never observe the backend mid-apply).
//
// Commit protocol:
//  1. write fresh pages (id >= commitBase) in place — invisible to the
//     committed state until the meta page references them;
//  2. stage every live page (id < commitBase) in a redo journal beyond
//     the logical end of file; sync;
//  3. write the meta page with journalHead set and sync — the commit
//     point: the new state is now durable, reachable via replay;
//  4. apply the journaled pages in place, sync, clear journalHead.
//
// Any failure before step 3 leaves the committed state untouched and
// the in-memory dirty state intact, so flush can simply be retried; a
// failure after it leaves a journal that Open (or a retry) replays.
func (p *pager) flush() error {
	if p.closed.Load() {
		return ErrClosed
	}
	base := p.commitBase.Load()

	// Phase 1: fresh dirty pages go straight to the backend; live dirty
	// pages are encoded and staged for the journal.
	var live []pageImage
	var dirty []*node
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			n := el.Value.(*node)
			if !n.dirty {
				continue
			}
			dirty = append(dirty, n)
			if n.id < base {
				buf := make([]byte, PageSize)
				if err := n.encode(buf); err != nil {
					sh.mu.Unlock()
					return err
				}
				live = append(live, pageImage{id: n.id, buf: buf})
				continue
			}
			if err := p.writeNode(n); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}

	// Phase 2: chain the deferred frees onto the free list. Free-page
	// links for fresh ids can be written now; live ids are journaled
	// like any other committed-state overwrite.
	p.metaMu.Lock()
	newMeta := p.meta
	pending := p.pendingFree
	p.metaMu.Unlock()
	for i := len(pending) - 1; i >= 0; i-- {
		id := pending[i]
		buf := make([]byte, PageSize)
		buf[0] = pageFree
		binary.LittleEndian.PutUint32(buf[1:5], newMeta.freeHead)
		sealPage(buf)
		if id < base {
			live = append(live, pageImage{id: id, buf: buf})
		} else {
			if err := p.be.WritePage(id, buf); err != nil {
				return err
			}
			p.stats.pagesWritten.Add(1)
		}
		newMeta.freeHead = id
	}

	// Phase 3: stage the journal, then commit via the meta page.
	newMeta.journalHead = nilPage
	if len(live) > 0 {
		head, err := p.writeJournal(newMeta.pageCount, live)
		if err != nil {
			return err
		}
		newMeta.journalHead = head
	}
	if err := p.be.Sync(); err != nil { // barrier: data + journal before meta
		return err
	}
	if err := p.writeMeta(&newMeta); err != nil {
		return err
	}
	if err := p.be.Sync(); err != nil { // commit point
		return err
	}

	// Phase 4: apply the journal in place and retire it.
	if len(live) > 0 {
		for i := range live {
			if err := p.be.WritePage(live[i].id, live[i].buf); err != nil {
				return err
			}
			p.stats.pagesWritten.Add(1)
		}
		if err := p.be.Sync(); err != nil {
			return err
		}
		newMeta.journalHead = nilPage
		if err := p.writeMeta(&newMeta); err != nil {
			return err
		}
		if err := p.be.Sync(); err != nil {
			return err
		}
	}

	// Success: only now clear the in-memory dirty state, so any earlier
	// failure leaves flush fully retryable.
	for _, n := range dirty {
		sh := p.shard(n.id)
		sh.mu.Lock()
		n.dirty = false
		sh.mu.Unlock()
	}
	p.metaMu.Lock()
	p.meta = newMeta
	p.pendingFree = nil
	p.metaMu.Unlock()
	p.commitBase.Store(newMeta.pageCount)
	p.stats.flushes.Add(1)
	p.stats.journalPages.Add(uint64(len(live)))
	return nil
}

func (p *pager) writeMeta(m *meta) error {
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	m.encode(*bufp)
	if err := p.be.WritePage(0, *bufp); err != nil {
		return err
	}
	p.stats.pagesWritten.Add(1)
	return nil
}

// writeJournal stages the live page images starting at jstart (the
// first page beyond the logical end of file): all content pages first,
// then the chained header pages. Returns the first header's page id.
func (p *pager) writeJournal(jstart uint32, live []pageImage) (uint32, error) {
	next := jstart
	entries := make([][2]uint32, 0, len(live))
	for i := range live {
		if err := p.be.WritePage(next, live[i].buf); err != nil {
			return nilPage, err
		}
		p.stats.pagesWritten.Add(1)
		entries = append(entries, [2]uint32{live[i].id, next})
		next++
	}
	headerStart := next
	nHeaders := (len(entries) + journalMaxEntries - 1) / journalMaxEntries
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	buf := *bufp
	for h := 0; h < nHeaders; h++ {
		lo := h * journalMaxEntries
		hi := min(lo+journalMaxEntries, len(entries))
		clear(buf)
		buf[0] = pageJournal
		nextHdr := nilPage
		if h+1 < nHeaders {
			nextHdr = headerStart + uint32(h) + 1
		}
		binary.LittleEndian.PutUint32(buf[1:5], nextHdr)
		binary.LittleEndian.PutUint32(buf[5:9], uint32(hi-lo))
		off := journalHeaderSize
		for _, e := range entries[lo:hi] {
			binary.LittleEndian.PutUint32(buf[off:], e[0])
			binary.LittleEndian.PutUint32(buf[off+4:], e[1])
			off += journalEntrySize
		}
		sealPage(buf)
		if err := p.be.WritePage(headerStart+uint32(h), buf); err != nil {
			return nilPage, err
		}
		p.stats.pagesWritten.Add(1)
	}
	return headerStart, nil
}

// replayJournal applies a pending redo journal left by a flush that was
// interrupted after its commit point, then clears journalHead. It is
// idempotent: dying mid-replay leaves the journal in place and the next
// open replays it again.
func replayJournal(be Backend, m *meta) error {
	if m.journalHead == nilPage {
		return nil
	}
	hbuf := make([]byte, PageSize)
	cbuf := make([]byte, PageSize)
	for head := m.journalHead; head != nilPage; {
		if err := be.ReadPage(head, hbuf); err != nil {
			return err
		}
		if err := verifyPage(head, hbuf); err != nil {
			return err
		}
		if hbuf[0] != pageJournal {
			return fmt.Errorf("%w: journal header %d has type 0x%02x", ErrCorrupt, head, hbuf[0])
		}
		next := binary.LittleEndian.Uint32(hbuf[1:5])
		count := int(binary.LittleEndian.Uint32(hbuf[5:9]))
		if count < 0 || count > journalMaxEntries {
			return fmt.Errorf("%w: journal header %d entry count %d", ErrCorrupt, head, count)
		}
		off := journalHeaderSize
		for i := 0; i < count; i++ {
			target := binary.LittleEndian.Uint32(hbuf[off:])
			content := binary.LittleEndian.Uint32(hbuf[off+4:])
			off += journalEntrySize
			if err := be.ReadPage(content, cbuf); err != nil {
				return err
			}
			if err := verifyPage(content, cbuf); err != nil {
				return err
			}
			if err := be.WritePage(target, cbuf); err != nil {
				return err
			}
		}
		head = next
	}
	if err := be.Sync(); err != nil {
		return err
	}
	m.journalHead = nilPage
	mbuf := make([]byte, PageSize)
	m.encode(mbuf)
	if err := be.WritePage(0, mbuf); err != nil {
		return err
	}
	return be.Sync()
}

func (p *pager) close() error {
	if err := p.flush(); err != nil {
		_ = p.be.Close()
		return err
	}
	p.closed.Store(true)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.nodes = nil
		sh.lru = list.New()
		sh.mu.Unlock()
	}
	return p.be.Close()
}

// setCatalogRoot records the catalog tree's root page in the meta page.
func (p *pager) setCatalogRoot(root uint32) {
	p.metaMu.Lock()
	p.meta.catalogRoot = root
	p.metaMu.Unlock()
}

// statsSnapshot returns a copy of the current counters. Every field is an
// untorn atomic load; see pagerStats for the (bounded) cross-field skew a
// snapshot taken during concurrent activity can show.
func (p *pager) statsSnapshot() Stats { return p.stats.snapshot() }

// shardStatsSnapshot returns per-shard cache counters in shard order.
func (p *pager) shardStatsSnapshot() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i := range p.shards {
		out[i] = p.shardStat(i)
	}
	return out
}

// shardStat returns one shard's counters.
func (p *pager) shardStat(i int) ShardStats {
	sh := &p.shards[i]
	sh.mu.Lock()
	n := 0
	if sh.lru != nil {
		n = sh.lru.Len()
	}
	sh.mu.Unlock()
	return ShardStats{
		Hits:   sh.hits.Load(),
		Misses: sh.misses.Load(),
		Len:    n,
		Max:    sh.max,
	}
}

func (p *pager) countSeek() { p.stats.seeks.Add(1) }
func (p *pager) countNext() { p.stats.nexts.Add(1) }
func (p *pager) countGet()  { p.stats.gets.Add(1) }
func (p *pager) countPut()  { p.stats.puts.Add(1) }
