package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// Stats counts physical and logical I/O performed by a DB. The retrieval
// experiments use these counters as a machine-independent cost model:
// relative method performance is reported in pages read as well as time.
type Stats struct {
	PagesRead    uint64 // pages fetched from the backend
	PagesWritten uint64 // pages written to the backend
	CacheHits    uint64 // node lookups served from the page cache
	CacheMisses  uint64 // node lookups that required a backend read
	Seeks        uint64 // cursor Seek operations
	Nexts        uint64 // cursor Next operations
	Gets         uint64 // point lookups
	Puts         uint64 // insertions/updates
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PagesRead += other.PagesRead
	s.PagesWritten += other.PagesWritten
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.Seeks += other.Seeks
	s.Nexts += other.Nexts
	s.Gets += other.Gets
	s.Puts += other.Puts
}

// Sub returns s minus other, for measuring a window of activity.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		PagesRead:    s.PagesRead - other.PagesRead,
		PagesWritten: s.PagesWritten - other.PagesWritten,
		CacheHits:    s.CacheHits - other.CacheHits,
		CacheMisses:  s.CacheMisses - other.CacheMisses,
		Seeks:        s.Seeks - other.Seeks,
		Nexts:        s.Nexts - other.Nexts,
		Gets:         s.Gets - other.Gets,
		Puts:         s.Puts - other.Puts,
	}
}

// backend is the raw page I/O abstraction under the pager.
type backend interface {
	readPage(id uint32, buf []byte) error
	writePage(id uint32, buf []byte) error
	sync() error
	close() error
}

// fileBackend stores pages in a single OS file at offset id*PageSize.
type fileBackend struct {
	f *os.File
}

func (fb *fileBackend) readPage(id uint32, buf []byte) error {
	_, err := fb.f.ReadAt(buf, int64(id)*PageSize)
	if err == io.EOF {
		return fmt.Errorf("%w: page %d beyond EOF", ErrCorrupt, id)
	}
	return err
}

func (fb *fileBackend) writePage(id uint32, buf []byte) error {
	_, err := fb.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

func (fb *fileBackend) sync() error  { return fb.f.Sync() }
func (fb *fileBackend) close() error { return fb.f.Close() }

// memBackend stores pages in memory; used for tests and small corpora.
type memBackend struct {
	pages [][]byte
}

func (mb *memBackend) readPage(id uint32, buf []byte) error {
	if int(id) >= len(mb.pages) || mb.pages[id] == nil {
		return fmt.Errorf("%w: page %d not written", ErrCorrupt, id)
	}
	copy(buf, mb.pages[id])
	return nil
}

func (mb *memBackend) writePage(id uint32, buf []byte) error {
	for int(id) >= len(mb.pages) {
		mb.pages = append(mb.pages, nil)
	}
	p := make([]byte, PageSize)
	copy(p, buf)
	mb.pages[id] = p
	return nil
}

func (mb *memBackend) sync() error  { return nil }
func (mb *memBackend) close() error { mb.pages = nil; return nil }

// pager mediates between node-level operations and the page backend. It
// keeps an LRU cache of decoded nodes, allocates and frees pages, and
// tracks dirty nodes until flush.
type pager struct {
	mu       sync.Mutex
	be       backend
	meta     meta
	cache    map[uint32]*list.Element // id -> element whose Value is *node
	lru      *list.List               // front = most recently used
	maxCache int
	stats    Stats
	closed   bool
}

// defaultCachePages bounds the decoded-node cache. At 4 KiB pages this is
// a 64 MiB working set, comparable to the paper's BDB cache configuration.
const defaultCachePages = 16384

func newPager(be backend, m meta, maxCache int) *pager {
	if maxCache <= 8 {
		maxCache = defaultCachePages
	}
	return &pager{
		be:       be,
		meta:     m,
		cache:    make(map[uint32]*list.Element),
		lru:      list.New(),
		maxCache: maxCache,
	}
}

// node returns the decoded node for id, loading it from the backend on miss.
func (p *pager) node(id uint32) (*node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodeLocked(id)
}

func (p *pager) nodeLocked(id uint32) (*node, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if el, ok := p.cache[id]; ok {
		p.stats.CacheHits++
		p.lru.MoveToFront(el)
		return el.Value.(*node), nil
	}
	p.stats.CacheMisses++
	buf := make([]byte, PageSize)
	if err := p.be.readPage(id, buf); err != nil {
		return nil, err
	}
	p.stats.PagesRead++
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	p.insertCacheLocked(n)
	return n, nil
}

func (p *pager) insertCacheLocked(n *node) {
	el := p.lru.PushFront(n)
	p.cache[n.id] = el
	for p.lru.Len() > p.maxCache {
		back := p.lru.Back()
		victim := back.Value.(*node)
		if victim.dirty {
			// Never evict dirty nodes silently; write them through.
			if err := p.writeNodeLocked(victim); err != nil {
				// Keep the node cached rather than lose data. Growing past
				// maxCache under write errors is the safe failure mode.
				return
			}
			victim.dirty = false
		}
		p.lru.Remove(back)
		delete(p.cache, victim.id)
	}
}

func (p *pager) writeNodeLocked(n *node) error {
	buf := make([]byte, PageSize)
	if err := n.encode(buf); err != nil {
		return err
	}
	if err := p.be.writePage(n.id, buf); err != nil {
		return err
	}
	p.stats.PagesWritten++
	return nil
}

// allocNode creates a new node backed by a fresh page.
func (p *pager) allocNode(isLeaf bool) (*node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	id, err := p.allocPageLocked()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, isLeaf: isLeaf, dirty: true}
	p.insertCacheLocked(n)
	return n, nil
}

func (p *pager) allocPageLocked() (uint32, error) {
	if p.meta.freeHead != nilPage {
		id := p.meta.freeHead
		buf := make([]byte, PageSize)
		if err := p.be.readPage(id, buf); err != nil {
			return 0, err
		}
		p.stats.PagesRead++
		if err := verifyPage(id, buf); err != nil {
			return 0, err
		}
		if buf[0] != pageFree {
			return 0, fmt.Errorf("%w: free list points at non-free page %d", ErrCorrupt, id)
		}
		p.meta.freeHead = binary.LittleEndian.Uint32(buf[1:5])
		return id, nil
	}
	id := p.meta.pageCount
	p.meta.pageCount++
	return id, nil
}

// freeNode releases the node's page back to the free chain.
func (p *pager) freeNode(n *node) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if el, ok := p.cache[n.id]; ok {
		p.lru.Remove(el)
		delete(p.cache, n.id)
	}
	buf := make([]byte, PageSize)
	buf[0] = pageFree
	binary.LittleEndian.PutUint32(buf[1:5], p.meta.freeHead)
	sealPage(buf)
	if err := p.be.writePage(n.id, buf); err != nil {
		return err
	}
	p.stats.PagesWritten++
	p.meta.freeHead = n.id
	return nil
}

// markDirty flags a node for write-out at the next flush and (re)registers
// it in the cache. Re-registration matters: callers hold node pointers
// across other page loads, and a load may have evicted this node — the
// mutated copy must be the one the cache serves and the flusher sees.
func (p *pager) markDirty(n *node) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n.dirty = true
	if el, ok := p.cache[n.id]; ok {
		if el.Value.(*node) == n {
			p.lru.MoveToFront(el)
			return
		}
		// A stale copy was re-read after eviction; ours is the newest.
		p.lru.Remove(el)
		delete(p.cache, n.id)
	}
	p.insertCacheLocked(n)
}

// flush writes all dirty nodes and the meta page.
func (p *pager) flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for el := p.lru.Front(); el != nil; el = el.Next() {
		n := el.Value.(*node)
		if !n.dirty {
			continue
		}
		if err := p.writeNodeLocked(n); err != nil {
			return err
		}
		n.dirty = false
	}
	buf := make([]byte, PageSize)
	p.meta.encode(buf)
	if err := p.be.writePage(0, buf); err != nil {
		return err
	}
	p.stats.PagesWritten++
	return p.be.sync()
}

func (p *pager) close() error {
	if err := p.flush(); err != nil {
		_ = p.be.close()
		return err
	}
	p.mu.Lock()
	p.closed = true
	p.cache = nil
	p.lru = nil
	p.mu.Unlock()
	return p.be.close()
}

// statsSnapshot returns a copy of the current counters.
func (p *pager) statsSnapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *pager) countSeek() { p.mu.Lock(); p.stats.Seeks++; p.mu.Unlock() }
func (p *pager) countNext() { p.mu.Lock(); p.stats.Nexts++; p.mu.Unlock() }
func (p *pager) countGet()  { p.mu.Lock(); p.stats.Gets++; p.mu.Unlock() }
func (p *pager) countPut()  { p.mu.Lock(); p.stats.Puts++; p.mu.Unlock() }
