package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Stats counts physical and logical I/O performed by a DB. The retrieval
// experiments use these counters as a machine-independent cost model:
// relative method performance is reported in pages read as well as time.
type Stats struct {
	PagesRead    uint64 // pages fetched from the backend
	PagesWritten uint64 // pages written to the backend
	CacheHits    uint64 // node lookups served from the page cache
	CacheMisses  uint64 // node lookups that required a backend read
	Seeks        uint64 // cursor Seek operations
	Nexts        uint64 // cursor Next operations
	Gets         uint64 // point lookups
	Puts         uint64 // insertions/updates
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PagesRead += other.PagesRead
	s.PagesWritten += other.PagesWritten
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.Seeks += other.Seeks
	s.Nexts += other.Nexts
	s.Gets += other.Gets
	s.Puts += other.Puts
}

// Sub returns s minus other, for measuring a window of activity.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		PagesRead:    s.PagesRead - other.PagesRead,
		PagesWritten: s.PagesWritten - other.PagesWritten,
		CacheHits:    s.CacheHits - other.CacheHits,
		CacheMisses:  s.CacheMisses - other.CacheMisses,
		Seeks:        s.Seeks - other.Seeks,
		Nexts:        s.Nexts - other.Nexts,
		Gets:         s.Gets - other.Gets,
		Puts:         s.Puts - other.Puts,
	}
}

// pagerStats is the live, concurrently-updated form of Stats. Each counter
// is independently atomic, so hot paths (one cursor step touches up to
// four counters) never serialize on a lock; statsSnapshot assembles a
// Stats from atomic loads, so no individual field is ever torn, though a
// snapshot taken mid-operation may be skewed by the operations in flight
// (a miss may be counted before its PagesRead, never the reverse).
type pagerStats struct {
	pagesRead    atomic.Uint64
	pagesWritten atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	seeks        atomic.Uint64
	nexts        atomic.Uint64
	gets         atomic.Uint64
	puts         atomic.Uint64
}

func (ps *pagerStats) snapshot() Stats {
	return Stats{
		PagesRead:    ps.pagesRead.Load(),
		PagesWritten: ps.pagesWritten.Load(),
		CacheHits:    ps.cacheHits.Load(),
		CacheMisses:  ps.cacheMisses.Load(),
		Seeks:        ps.seeks.Load(),
		Nexts:        ps.nexts.Load(),
		Gets:         ps.gets.Load(),
		Puts:         ps.puts.Load(),
	}
}

// backend is the raw page I/O abstraction under the pager. readPage and
// writePage may be called concurrently (reads with reads, and reads with
// writes to other pages); implementations must tolerate that.
type backend interface {
	readPage(id uint32, buf []byte) error
	writePage(id uint32, buf []byte) error
	sync() error
	close() error
}

// fileBackend stores pages in a single OS file at offset id*PageSize.
// ReadAt/WriteAt are safe for concurrent use by the os package contract.
type fileBackend struct {
	f *os.File
}

func (fb *fileBackend) readPage(id uint32, buf []byte) error {
	_, err := fb.f.ReadAt(buf, int64(id)*PageSize)
	if err == io.EOF {
		return fmt.Errorf("%w: page %d beyond EOF", ErrCorrupt, id)
	}
	return err
}

func (fb *fileBackend) writePage(id uint32, buf []byte) error {
	_, err := fb.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

func (fb *fileBackend) sync() error  { return fb.f.Sync() }
func (fb *fileBackend) close() error { return fb.f.Close() }

// memBackend stores pages in memory; used for tests and small corpora.
// The RWMutex makes concurrent readers safe against the slice growth a
// concurrent writePage can trigger (readers no longer serialize behind a
// single pager lock, so the backend must provide its own safety).
type memBackend struct {
	mu    sync.RWMutex
	pages [][]byte
}

func (mb *memBackend) readPage(id uint32, buf []byte) error {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	if int(id) >= len(mb.pages) || mb.pages[id] == nil {
		return fmt.Errorf("%w: page %d not written", ErrCorrupt, id)
	}
	copy(buf, mb.pages[id])
	return nil
}

func (mb *memBackend) writePage(id uint32, buf []byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for int(id) >= len(mb.pages) {
		mb.pages = append(mb.pages, nil)
	}
	p := make([]byte, PageSize)
	copy(p, buf)
	mb.pages[id] = p
	return nil
}

func (mb *memBackend) sync() error { return nil }

func (mb *memBackend) close() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.pages = nil
	return nil
}

// pageBufPool recycles PageSize scratch buffers for backend reads and
// node encoding, which previously allocated a fresh 4 KiB slice per page
// touched on a cache miss, flush, or free.
var pageBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, PageSize)
		return &b
	},
}

func getPageBuf() *[]byte  { return pageBufPool.Get().(*[]byte) }
func putPageBuf(b *[]byte) { pageBufPool.Put(b) }

// cacheShard is one independently locked slice of the decoded-node cache.
type cacheShard struct {
	mu    sync.Mutex
	nodes map[uint32]*list.Element // id -> element whose Value is *node
	lru   *list.List               // front = most recently used
	max   int
}

// pager mediates between node-level operations and the page backend. It
// keeps an LRU cache of decoded nodes, allocates and frees pages, and
// tracks dirty nodes until flush.
//
// The cache is sharded by page id so concurrent readers on different
// pages never contend: a node lookup takes only its shard's mutex, I/O
// counters are atomic, and page allocation/free (write path only) takes
// metaMu. Lock ordering: a shard mutex and metaMu are never held at the
// same time.
type pager struct {
	be     backend
	shards []cacheShard
	mask   uint32 // len(shards)-1; shard count is a power of two

	metaMu sync.Mutex // guards meta (pageCount, freeHead, catalogRoot)
	meta   meta

	stats  pagerStats
	closed atomic.Bool
}

// defaultCachePages bounds the decoded-node cache. At 4 KiB pages this is
// a 64 MiB working set, comparable to the paper's BDB cache configuration.
const defaultCachePages = 16384

// defaultCacheShards is the shard count for default-sized caches: enough
// that a handful of CPUs rarely collide on a shard mutex, small enough
// that per-shard LRU capacity stays meaningful.
const defaultCacheShards = 16

// minShardPages keeps each shard's LRU large enough to be useful; tiny
// caches get fewer shards rather than degenerate one-page LRUs.
const minShardPages = 8

func newPager(be backend, m meta, maxCache, shardCount int) *pager {
	if maxCache <= 8 {
		maxCache = defaultCachePages
	}
	if shardCount <= 0 {
		shardCount = defaultCacheShards
	}
	// Round up to a power of two so shard selection is a mask, and shrink
	// until every shard holds at least minShardPages.
	n := 1
	for n < shardCount && n < 256 {
		n <<= 1
	}
	for n > 1 && maxCache/n < minShardPages {
		n >>= 1
	}
	perShard := (maxCache + n - 1) / n
	p := &pager{
		be:     be,
		meta:   m,
		shards: make([]cacheShard, n),
		mask:   uint32(n - 1),
	}
	for i := range p.shards {
		p.shards[i] = cacheShard{
			nodes: make(map[uint32]*list.Element),
			lru:   list.New(),
			max:   perShard,
		}
	}
	return p
}

func (p *pager) shard(id uint32) *cacheShard {
	// Consecutive pages land in different shards, which spreads the
	// sequential leaf chains cursors walk across all shard mutexes.
	return &p.shards[id&p.mask]
}

// node returns the decoded node for id, loading it from the backend on
// miss. Safe for any number of concurrent callers; the backend read and
// decode happen outside the shard lock, so misses on different pages
// proceed in parallel.
func (p *pager) node(id uint32) (*node, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if el, ok := sh.nodes[id]; ok {
		sh.lru.MoveToFront(el)
		n := el.Value.(*node)
		sh.mu.Unlock()
		p.stats.cacheHits.Add(1)
		return n, nil
	}
	sh.mu.Unlock()

	p.stats.cacheMisses.Add(1)
	bufp := getPageBuf()
	err := p.be.readPage(id, *bufp)
	if err != nil {
		putPageBuf(bufp)
		return nil, err
	}
	p.stats.pagesRead.Add(1)
	n, err := decodeNode(id, *bufp)
	putPageBuf(bufp)
	if err != nil {
		return nil, err
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.nodes[id]; ok {
		// Another reader missed on the same page and inserted first; the
		// cached copy is canonical (it may have been dirtied since).
		sh.lru.MoveToFront(el)
		return el.Value.(*node), nil
	}
	p.insertShardLocked(sh, n)
	return n, nil
}

func (p *pager) insertShardLocked(sh *cacheShard, n *node) {
	el := sh.lru.PushFront(n)
	sh.nodes[n.id] = el
	for sh.lru.Len() > sh.max {
		back := sh.lru.Back()
		victim := back.Value.(*node)
		if victim.dirty {
			// Never evict dirty nodes silently; write them through.
			if err := p.writeNode(victim); err != nil {
				// Keep the node cached rather than lose data. Growing past
				// max under write errors is the safe failure mode.
				return
			}
			victim.dirty = false
		}
		sh.lru.Remove(back)
		delete(sh.nodes, victim.id)
	}
}

func (p *pager) writeNode(n *node) error {
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	if err := n.encode(*bufp); err != nil {
		return err
	}
	if err := p.be.writePage(n.id, *bufp); err != nil {
		return err
	}
	p.stats.pagesWritten.Add(1)
	return nil
}

// allocNode creates a new node backed by a fresh page.
func (p *pager) allocNode(isLeaf bool) (*node, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	p.metaMu.Lock()
	id, err := p.allocPageLocked()
	p.metaMu.Unlock()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, isLeaf: isLeaf, dirty: true}
	sh := p.shard(id)
	sh.mu.Lock()
	p.insertShardLocked(sh, n)
	sh.mu.Unlock()
	return n, nil
}

func (p *pager) allocPageLocked() (uint32, error) {
	if p.meta.freeHead != nilPage {
		id := p.meta.freeHead
		bufp := getPageBuf()
		defer putPageBuf(bufp)
		buf := *bufp
		if err := p.be.readPage(id, buf); err != nil {
			return 0, err
		}
		p.stats.pagesRead.Add(1)
		if err := verifyPage(id, buf); err != nil {
			return 0, err
		}
		if buf[0] != pageFree {
			return 0, fmt.Errorf("%w: free list points at non-free page %d", ErrCorrupt, id)
		}
		p.meta.freeHead = binary.LittleEndian.Uint32(buf[1:5])
		return id, nil
	}
	id := p.meta.pageCount
	p.meta.pageCount++
	return id, nil
}

// freeNode releases the node's page back to the free chain.
func (p *pager) freeNode(n *node) error {
	if p.closed.Load() {
		return ErrClosed
	}
	sh := p.shard(n.id)
	sh.mu.Lock()
	if el, ok := sh.nodes[n.id]; ok {
		sh.lru.Remove(el)
		delete(sh.nodes, n.id)
	}
	sh.mu.Unlock()

	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	buf := *bufp
	clear(buf)
	buf[0] = pageFree
	binary.LittleEndian.PutUint32(buf[1:5], p.meta.freeHead)
	sealPage(buf)
	if err := p.be.writePage(n.id, buf); err != nil {
		return err
	}
	p.stats.pagesWritten.Add(1)
	p.meta.freeHead = n.id
	return nil
}

// markDirty flags a node for write-out at the next flush and (re)registers
// it in the cache. Re-registration matters: callers hold node pointers
// across other page loads, and a load may have evicted this node — the
// mutated copy must be the one the cache serves and the flusher sees.
func (p *pager) markDirty(n *node) {
	sh := p.shard(n.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n.dirty = true
	if el, ok := sh.nodes[n.id]; ok {
		if el.Value.(*node) == n {
			sh.lru.MoveToFront(el)
			return
		}
		// A stale copy was re-read after eviction; ours is the newest.
		sh.lru.Remove(el)
		delete(sh.nodes, n.id)
	}
	p.insertShardLocked(sh, n)
}

// flush writes all dirty nodes and the meta page. Like all write-path
// operations it must not run concurrently with other writes; concurrent
// readers are safe (each shard is locked while scanned).
func (p *pager) flush() error {
	if p.closed.Load() {
		return ErrClosed
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			n := el.Value.(*node)
			if !n.dirty {
				continue
			}
			if err := p.writeNode(n); err != nil {
				sh.mu.Unlock()
				return err
			}
			n.dirty = false
		}
		sh.mu.Unlock()
	}
	p.metaMu.Lock()
	bufp := getPageBuf()
	p.meta.encode(*bufp)
	err := p.be.writePage(0, *bufp)
	putPageBuf(bufp)
	p.metaMu.Unlock()
	if err != nil {
		return err
	}
	p.stats.pagesWritten.Add(1)
	return p.be.sync()
}

func (p *pager) close() error {
	if err := p.flush(); err != nil {
		_ = p.be.close()
		return err
	}
	p.closed.Store(true)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.nodes = nil
		sh.lru = list.New()
		sh.mu.Unlock()
	}
	return p.be.close()
}

// setCatalogRoot records the catalog tree's root page in the meta page.
func (p *pager) setCatalogRoot(root uint32) {
	p.metaMu.Lock()
	p.meta.catalogRoot = root
	p.metaMu.Unlock()
}

// statsSnapshot returns a copy of the current counters. Every field is an
// untorn atomic load; see pagerStats for the (bounded) cross-field skew a
// snapshot taken during concurrent activity can show.
func (p *pager) statsSnapshot() Stats { return p.stats.snapshot() }

func (p *pager) countSeek() { p.stats.seeks.Add(1) }
func (p *pager) countNext() { p.stats.nexts.Add(1) }
func (p *pager) countGet()  { p.stats.gets.Add(1) }
func (p *pager) countPut()  { p.stats.puts.Add(1) }
