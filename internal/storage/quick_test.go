package storage

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickPutGetRoundTrip property: any batch of (key, value) pairs put
// into a tree comes back byte-identical, with last-write-wins semantics.
func TestQuickPutGetRoundTrip(t *testing.T) {
	f := func(pairs map[string][]byte) bool {
		db := OpenMemory()
		defer db.Close()
		tr, err := db.CreateTable("q")
		if err != nil {
			return false
		}
		want := make(map[string][]byte)
		for k, v := range pairs {
			if len(k) == 0 || len(k) > MaxKeySize || len(v) > MaxValueSize {
				continue // out-of-contract inputs are rejected; skip them
			}
			if err := tr.Put([]byte(k), v); err != nil {
				return false
			}
			want[k] = v
		}
		for k, v := range want {
			got, err := tr.Get([]byte(k))
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		n, err := tr.Len()
		return err == nil && n == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCursorSortedInvariant property: a full cursor scan always yields
// keys in strictly ascending order equal to the sorted key set.
func TestQuickCursorSortedInvariant(t *testing.T) {
	f := func(keys []string) bool {
		db := OpenMemory()
		defer db.Close()
		tr, err := db.CreateTable("q")
		if err != nil {
			return false
		}
		uniq := make(map[string]bool)
		for _, k := range keys {
			if len(k) == 0 || len(k) > MaxKeySize {
				continue
			}
			if err := tr.Put([]byte(k), []byte("v")); err != nil {
				return false
			}
			uniq[k] = true
		}
		var want []string
		for k := range uniq {
			want = append(want, k)
		}
		sort.Strings(want)
		cur := tr.Cursor()
		ok, err := cur.First()
		if err != nil {
			return false
		}
		i := 0
		for ok {
			if i >= len(want) || string(cur.Key()) != want[i] {
				return false
			}
			i++
			ok, err = cur.Next()
			if err != nil {
				return false
			}
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeekLowerBound property: Seek(k) lands on the smallest stored
// key >= k, for arbitrary stored sets and probe keys.
func TestQuickSeekLowerBound(t *testing.T) {
	f := func(keys []string, probes []string) bool {
		db := OpenMemory()
		defer db.Close()
		tr, err := db.CreateTable("q")
		if err != nil {
			return false
		}
		var stored []string
		seen := make(map[string]bool)
		for _, k := range keys {
			if len(k) == 0 || len(k) > MaxKeySize || seen[k] {
				continue
			}
			seen[k] = true
			stored = append(stored, k)
			if err := tr.Put([]byte(k), []byte("v")); err != nil {
				return false
			}
		}
		sort.Strings(stored)
		cur := tr.Cursor()
		for _, p := range probes {
			if len(p) == 0 || len(p) > MaxKeySize {
				continue
			}
			i := sort.SearchStrings(stored, p)
			ok, err := cur.Seek([]byte(p))
			if err != nil {
				return false
			}
			if i == len(stored) {
				if ok {
					return false
				}
				continue
			}
			if !ok || string(cur.Key()) != stored[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteComplement property: deleting an arbitrary subset leaves
// exactly the complement retrievable.
func TestQuickDeleteComplement(t *testing.T) {
	f := func(n uint8, delMask uint64) bool {
		db := OpenMemory()
		defer db.Close()
		tr, err := db.CreateTable("q")
		if err != nil {
			return false
		}
		total := int(n)%64 + 1
		for i := 0; i < total; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)}); err != nil {
				return false
			}
		}
		for i := 0; i < total; i++ {
			if delMask&(1<<uint(i)) != 0 {
				removed, err := tr.Delete([]byte(fmt.Sprintf("k%02d", i)))
				if err != nil || !removed {
					return false
				}
			}
		}
		for i := 0; i < total; i++ {
			_, err := tr.Get([]byte(fmt.Sprintf("k%02d", i)))
			deleted := delMask&(1<<uint(i)) != 0
			if deleted && err != ErrNotFound {
				return false
			}
			if !deleted && err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBulkEqualsPut property: bulk-loading a sorted set produces a
// tree indistinguishable (by scan) from one built with random-order Puts.
func TestQuickBulkEqualsPut(t *testing.T) {
	f := func(keys []string) bool {
		uniq := make(map[string]bool)
		var sorted []string
		for _, k := range keys {
			if len(k) == 0 || len(k) > MaxKeySize || uniq[k] {
				continue
			}
			uniq[k] = true
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)

		db := OpenMemory()
		defer db.Close()
		bt, err := db.CreateTable("bulk")
		if err != nil {
			return false
		}
		bl, err := bt.NewBulkLoader(0)
		if err != nil {
			return false
		}
		for _, k := range sorted {
			if err := bl.Add([]byte(k), []byte(k)); err != nil {
				return false
			}
		}
		if err := bl.Finish(); err != nil {
			return false
		}
		pt, err := db.CreateTable("put")
		if err != nil {
			return false
		}
		for _, k := range keys { // original (unsorted, with dups) order
			if len(k) == 0 || len(k) > MaxKeySize {
				continue
			}
			if err := pt.Put([]byte(k), []byte(k)); err != nil {
				return false
			}
		}
		bc, pc := bt.Cursor(), pt.Cursor()
		bok, berr := bc.First()
		pok, perr := pc.First()
		for {
			if berr != nil || perr != nil || bok != pok {
				return false
			}
			if !bok {
				return true
			}
			if !bytes.Equal(bc.Key(), pc.Key()) || !bytes.Equal(bc.Value(), pc.Value()) {
				return false
			}
			bok, berr = bc.Next()
			pok, perr = pc.Next()
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
