package storage

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeekFloorBasic(t *testing.T) {
	tr := newTestTree(t)
	for i := 0; i < 1000; i += 10 { // keys 0, 10, ..., 990
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cur := tr.Cursor()
	// Exact hit.
	ok, err := cur.SeekFloor([]byte("k0500"))
	if err != nil || !ok || string(cur.Key()) != "k0500" {
		t.Fatalf("exact SeekFloor = (%v, %v, %q)", ok, err, cur.Key())
	}
	// Between keys: floor is the lower neighbor.
	ok, err = cur.SeekFloor([]byte("k0505"))
	if err != nil || !ok || string(cur.Key()) != "k0500" {
		t.Fatalf("between SeekFloor = (%v, %v, %q)", ok, err, cur.Key())
	}
	// Below the smallest key: no floor.
	ok, err = cur.SeekFloor([]byte("a"))
	if err != nil || ok {
		t.Fatalf("below-min SeekFloor = (%v, %v)", ok, err)
	}
	// Above the largest key: floor is the max.
	ok, err = cur.SeekFloor([]byte("z"))
	if err != nil || !ok || string(cur.Key()) != "k0990" {
		t.Fatalf("above-max SeekFloor = (%v, %v, %q)", ok, err, cur.Key())
	}
	// Next after a floor continues in order.
	ok, err = cur.SeekFloor([]byte("k0505"))
	if err != nil || !ok {
		t.Fatal("reseek failed")
	}
	ok, err = cur.Next()
	if err != nil || !ok || string(cur.Key()) != "k0510" {
		t.Fatalf("Next after floor = (%v, %v, %q)", ok, err, cur.Key())
	}
}

func TestSeekFloorEmptyTree(t *testing.T) {
	tr := newTestTree(t)
	cur := tr.Cursor()
	if ok, err := cur.SeekFloor([]byte("x")); ok || err != nil {
		t.Fatalf("SeekFloor on empty = (%v, %v)", ok, err)
	}
}

func TestSeekFloorLeafBoundaries(t *testing.T) {
	// Dense keys force many leaves; probe around every key to hit the
	// leftmost-cell-of-leaf climb path.
	tr := newTestTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i*2)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cur := tr.Cursor()
	for i := 0; i < n; i += 7 {
		probe := []byte(fmt.Sprintf("key-%06d", i*2+1)) // between i*2 and i*2+2
		ok, err := cur.SeekFloor(probe)
		if err != nil || !ok {
			t.Fatalf("SeekFloor(%s) = (%v, %v)", probe, ok, err)
		}
		want := fmt.Sprintf("key-%06d", i*2)
		if string(cur.Key()) != want {
			t.Fatalf("SeekFloor(%s) = %q, want %q", probe, cur.Key(), want)
		}
	}
}

// Property: SeekFloor(k) returns the greatest stored key <= k, on random
// key sets and probes.
func TestQuickSeekFloor(t *testing.T) {
	f := func(keys []string, probes []string) bool {
		db := OpenMemory()
		defer db.Close()
		tr, err := db.CreateTable("q")
		if err != nil {
			return false
		}
		var stored []string
		seen := make(map[string]bool)
		for _, k := range keys {
			if len(k) == 0 || len(k) > MaxKeySize || seen[k] {
				continue
			}
			seen[k] = true
			stored = append(stored, k)
			if err := tr.Put([]byte(k), []byte("v")); err != nil {
				return false
			}
		}
		sort.Strings(stored)
		cur := tr.Cursor()
		for _, p := range probes {
			if len(p) == 0 || len(p) > MaxKeySize {
				continue
			}
			// Model: index of last stored key <= p.
			i := sort.SearchStrings(stored, p)
			if i < len(stored) && stored[i] == p {
				// exact
			} else {
				i--
			}
			ok, err := cur.SeekFloor([]byte(p))
			if err != nil {
				return false
			}
			if i < 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || string(cur.Key()) != stored[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
