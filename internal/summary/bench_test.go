package summary

import (
	"testing"

	"trex/internal/corpus"
)

// Ablation: summary kind and alias mapping vs node count and build time —
// the design space of Section 2.1.
func BenchmarkSummaryKinds(b *testing.B) {
	col := corpus.GenerateIEEE(150, 31)
	cases := []struct {
		name string
		opts Options
	}{
		{"tag", Options{Kind: KindTag}},
		{"tag-alias", Options{Kind: KindTag, Aliases: col.Aliases}},
		{"incoming", Options{Kind: KindIncoming}},
		{"incoming-alias", Options{Kind: KindIncoming, Aliases: col.Aliases}},
		{"a2", Options{Kind: KindAK, K: 2}},
		{"a3", Options{Kind: KindAK, K: 3}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var nodes, safe int
			for i := 0; i < b.N; i++ {
				s, err := Build(col, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				nodes = s.NumNodes()
				if s.SafeForRetrieval() {
					safe = 1
				}
			}
			b.ReportMetric(float64(nodes), "nodes")
			b.ReportMetric(float64(safe), "safe")
		})
	}
}

// Ablation: A(k) node counts converge to the incoming summary as k grows.
func TestAKConvergesToIncoming(t *testing.T) {
	col := corpus.GenerateIEEE(60, 8)
	inc, err := Build(col, Options{Kind: KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for k := 1; k <= 8; k++ {
		ak, err := Build(col, Options{Kind: KindAK, K: k, Aliases: col.Aliases})
		if err != nil {
			t.Fatal(err)
		}
		if ak.NumNodes() < prev {
			t.Fatalf("A(%d) nodes %d < A(%d) nodes %d: refinement must be monotone",
				k, ak.NumNodes(), k-1, prev)
		}
		prev = ak.NumNodes()
		if ak.NumNodes() > inc.NumNodes() {
			t.Fatalf("A(%d) nodes %d exceed incoming %d", k, ak.NumNodes(), inc.NumNodes())
		}
	}
	// Deep enough k equals the incoming summary (max depth is bounded).
	deep, err := Build(col, Options{Kind: KindAK, K: 32, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	if deep.NumNodes() != inc.NumNodes() {
		t.Fatalf("A(32) nodes = %d, incoming = %d", deep.NumNodes(), inc.NumNodes())
	}
	if !deep.SafeForRetrieval() {
		t.Fatal("A(32) should be safe on this collection")
	}
}
