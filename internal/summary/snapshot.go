package summary

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshot is the serialized form of a Summary, so an engine can reopen a
// collection from disk without re-parsing the corpus.
type snapshot struct {
	Kind    Kind
	K       int
	Aliases map[string]string
	Safe    bool
	Nodes   []snapshotNode
}

type snapshotNode struct {
	Label      string
	Path       []string
	Parent     int
	Children   []int
	ExtentSize int
}

// MarshalBinary encodes the summary with encoding/gob.
func (s *Summary) MarshalBinary() ([]byte, error) {
	snap := snapshot{
		Kind:    s.Kind,
		K:       s.K,
		Aliases: s.Aliases,
		Safe:    s.safe,
	}
	for _, n := range s.Nodes {
		snap.Nodes = append(snap.Nodes, snapshotNode{
			Label:      n.Label,
			Path:       n.Path,
			Parent:     n.Parent,
			Children:   n.Children,
			ExtentSize: n.ExtentSize,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("summary: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a summary encoded by MarshalBinary.
func (s *Summary) UnmarshalBinary(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("summary: decode: %w", err)
	}
	s.Kind = snap.Kind
	s.K = snap.K
	s.Aliases = snap.Aliases
	s.safe = snap.Safe
	s.Nodes = nil
	s.byKey = make(map[string]*Node, len(snap.Nodes))
	for i, sn := range snap.Nodes {
		n := &Node{
			SID:        i + 1,
			Label:      sn.Label,
			Path:       sn.Path,
			Parent:     sn.Parent,
			Children:   sn.Children,
			ExtentSize: sn.ExtentSize,
		}
		s.Nodes = append(s.Nodes, n)
		s.byKey[s.key(n.Path)] = n
	}
	return nil
}
