package summary

import (
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/xmlscan"
)

func TestSnapshotRoundTrip(t *testing.T) {
	col := corpus.GenerateIEEE(10, 4)
	orig, err := Build(col, Options{Kind: KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Summary
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.NumNodes() != orig.NumNodes() {
		t.Fatalf("nodes = %d, want %d", restored.NumNodes(), orig.NumNodes())
	}
	if restored.SafeForRetrieval() != orig.SafeForRetrieval() {
		t.Fatal("safety flag lost")
	}
	if restored.Kind != orig.Kind {
		t.Fatal("kind lost")
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], restored.Nodes[i]
		if a.SID != b.SID || a.Label != b.Label ||
			strings.Join(a.Path, "/") != strings.Join(b.Path, "/") ||
			a.Parent != b.Parent || a.ExtentSize != b.ExtentSize {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
	// The restored summary must assign identical sids to documents.
	root, err := xmlscan.Parse(col.Docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	var origSIDs, restSIDs []int
	if err := orig.AssignDoc(root, func(_ *xmlscan.Node, sid int) {
		origSIDs = append(origSIDs, sid)
	}); err != nil {
		t.Fatal(err)
	}
	if err := restored.AssignDoc(root, func(_ *xmlscan.Node, sid int) {
		restSIDs = append(restSIDs, sid)
	}); err != nil {
		t.Fatal(err)
	}
	if len(origSIDs) != len(restSIDs) {
		t.Fatalf("assignment lengths differ")
	}
	for i := range origSIDs {
		if origSIDs[i] != restSIDs[i] {
			t.Fatalf("sid assignment differs at %d: %d vs %d", i, origSIDs[i], restSIDs[i])
		}
	}
}

func TestSnapshotBadData(t *testing.T) {
	var s Summary
	if err := s.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
}
