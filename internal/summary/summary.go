// Package summary builds the structural summaries TReX uses to translate
// path constraints into sets of summary-node identifiers (sids).
//
// A structural summary partitions the elements of a collection into
// extents of structurally indistinguishable elements (Section 2.1 of the
// paper). This package implements the summaries the paper discusses:
//
//   - the tag summary (one extent per label),
//   - the incoming summary (one extent per root-to-element label path),
//   - the A(k) family (one extent per length-k path suffix), which
//     subsumes the two above (A(0)=tag-like, A(inf)=incoming), and
//   - alias variants of all of the above, using the INEX-style alias
//     mapping that collapses synonym tags (ss1/ss2 -> sec).
//
// TReX retrieval requires that no two elements in the same extent stand in
// an ancestor/descendant relationship. The incoming summary satisfies this
// by construction (an ancestor's path is a strict prefix, hence shorter);
// tag and small-k summaries may violate it, and Build reports whether the
// built summary is safe for retrieval over the given collection.
package summary

import (
	"fmt"
	"strings"

	"trex/internal/corpus"
	"trex/internal/xmlscan"
)

// Kind selects the partitioning criterion.
type Kind int

const (
	// KindIncoming partitions by full root-to-element label path.
	KindIncoming Kind = iota
	// KindTag partitions by element label only.
	KindTag
	// KindAK partitions by the label-path suffix of length K.
	KindAK
)

func (k Kind) String() string {
	switch k {
	case KindIncoming:
		return "incoming"
	case KindTag:
		return "tag"
	case KindAK:
		return "a(k)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures Build.
type Options struct {
	Kind Kind
	// Aliases maps synonym labels to canonical labels before
	// partitioning; nil builds the no-alias summary.
	Aliases map[string]string
	// K is the suffix length for KindAK (must be >= 1).
	K int
}

// Node is one summary node (one extent).
type Node struct {
	// SID is the summary node identifier, 1-based and dense.
	SID int
	// Label is the (alias-resolved) element label.
	Label string
	// Path is the alias-resolved label path from the collection root to
	// this node. For KindTag it is just [Label]; for KindAK it is the
	// suffix that keys the extent.
	Path []string
	// Parent is the sid of the parent summary node in the summary tree,
	// or 0 for nodes at document-root level. Only meaningful for
	// KindIncoming, where the summary is a tree.
	Parent int
	// Children are child sids in first-seen order (KindIncoming only).
	Children []int
	// ExtentSize is the number of collection elements in this extent.
	ExtentSize int
}

// XPathExpr describes the extent as an XPath expression, the way TReX
// describes extents (Section 2.1).
func (n *Node) XPathExpr() string {
	return "/" + strings.Join(n.Path, "/")
}

// Summary is a built structural summary over one collection.
type Summary struct {
	Kind    Kind
	Aliases map[string]string
	K       int
	// Nodes indexed by SID-1.
	Nodes []*Node
	// safe reports the no-ancestor/descendant-in-extent property over the
	// collection the summary was built from.
	safe bool

	byKey map[string]*Node
}

// NumNodes returns the number of summary nodes (the figure the paper
// reports for each summary kind in Section 2.1).
func (s *Summary) NumNodes() int { return len(s.Nodes) }

// SafeForRetrieval reports whether no element and one of its ancestors
// shared a sid anywhere in the collection the summary was built from.
// TReX only evaluates queries over safe summaries.
func (s *Summary) SafeForRetrieval() bool { return s.safe }

// NodeBySID returns the node with the given sid, or nil.
func (s *Summary) NodeBySID(sid int) *Node {
	if sid < 1 || sid > len(s.Nodes) {
		return nil
	}
	return s.Nodes[sid-1]
}

// resolve applies the alias mapping to a label.
func (s *Summary) resolve(label string) string {
	if s.Aliases == nil {
		return label
	}
	if a, ok := s.Aliases[label]; ok {
		return a
	}
	return label
}

// key computes the extent key for an alias-resolved path.
func (s *Summary) key(path []string) string {
	switch s.Kind {
	case KindTag:
		return path[len(path)-1]
	case KindAK:
		k := s.K
		if k < 1 {
			k = 1
		}
		if len(path) > k {
			path = path[len(path)-k:]
		}
		return strings.Join(path, "/")
	default:
		return strings.Join(path, "/")
	}
}

// normalizeAliases flattens alias chains (a->b, b->c becomes a->c, b->c)
// and rejects cycles, so resolve() is a single lookup.
func normalizeAliases(aliases map[string]string) (map[string]string, error) {
	if aliases == nil {
		return nil, nil
	}
	out := make(map[string]string, len(aliases))
	for start := range aliases {
		cur := start
		for steps := 0; ; steps++ {
			next, ok := aliases[cur]
			if !ok || next == cur {
				// Identity mappings are harmless no-ops.
				break
			}
			if steps > len(aliases) {
				return nil, fmt.Errorf("summary: alias cycle involving %q", start)
			}
			cur = next
		}
		if cur != start {
			out[start] = cur
		}
	}
	return out, nil
}

// Build constructs a summary over col.
func Build(col *corpus.Collection, opts Options) (*Summary, error) {
	aliases, err := normalizeAliases(opts.Aliases)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Kind:    opts.Kind,
		Aliases: aliases,
		K:       opts.K,
		byKey:   make(map[string]*Node),
		safe:    true,
	}
	if opts.Kind == KindAK && opts.K < 1 {
		return nil, fmt.Errorf("summary: A(k) requires K >= 1, got %d", opts.K)
	}
	for _, d := range col.Docs {
		root, err := corpus.ParseDoc(col.Format, d.Data)
		if err != nil {
			return nil, fmt.Errorf("summary: doc %d: %w", d.ID, err)
		}
		s.addTree(root)
	}
	return s, nil
}

// ExtendWith folds one more document tree into the summary: new label
// paths get fresh sids (appended, so existing sid assignments are
// stable), extent counts grow, and the retrieval-safety flag is
// re-verified along the new document's paths. Used by incremental index
// maintenance.
func (s *Summary) ExtendWith(root *xmlscan.Node) {
	s.addTree(root)
}

// addTree walks one document tree, creating/locating summary nodes and
// counting extents. It also verifies retrieval safety along each
// root-to-leaf sid stack.
func (s *Summary) addTree(root *xmlscan.Node) {
	var path []string
	var sidStack []int
	var walk func(n *xmlscan.Node, parentSID int)
	walk = func(n *xmlscan.Node, parentSID int) {
		path = append(path, s.resolve(n.Tag))
		sn := s.locate(path, parentSID)
		sn.ExtentSize++
		for _, anc := range sidStack {
			if anc == sn.SID {
				s.safe = false
			}
		}
		sidStack = append(sidStack, sn.SID)
		for _, c := range n.Children {
			walk(c, sn.SID)
		}
		sidStack = sidStack[:len(sidStack)-1]
		path = path[:len(path)-1]
	}
	walk(root, 0)
}

// locate finds or creates the summary node for the alias-resolved path.
func (s *Summary) locate(path []string, parentSID int) *Node {
	k := s.key(path)
	if n, ok := s.byKey[k]; ok {
		return n
	}
	n := &Node{
		SID:    len(s.Nodes) + 1,
		Label:  path[len(path)-1],
		Path:   append([]string(nil), path...),
		Parent: parentSID,
	}
	s.Nodes = append(s.Nodes, n)
	s.byKey[k] = n
	if s.Kind == KindIncoming && parentSID != 0 {
		p := s.NodeBySID(parentSID)
		p.Children = append(p.Children, n.SID)
	}
	return n
}

// AssignFunc receives each element of a document with its sid, in document
// order. start/end are the element's byte span.
type AssignFunc func(n *xmlscan.Node, sid int)

// AssignDoc walks a parsed document and reports the sid of every element.
// It returns an error if the document contains a path the summary has
// never seen (i.e. it was built over a different collection).
func (s *Summary) AssignDoc(root *xmlscan.Node, fn AssignFunc) error {
	var path []string
	var walk func(n *xmlscan.Node) error
	walk = func(n *xmlscan.Node) error {
		path = append(path, s.resolve(n.Tag))
		defer func() { path = path[:len(path)-1] }()
		sn, ok := s.byKey[s.key(path)]
		if !ok {
			return fmt.Errorf("summary: unknown path %q", strings.Join(path, "/"))
		}
		fn(n, sn.SID)
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

// TotalExtent returns the sum of extent sizes (the number of elements in
// the collection).
func (s *Summary) TotalExtent() int {
	total := 0
	for _, n := range s.Nodes {
		total += n.ExtentSize
	}
	return total
}
