package summary

import (
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/xmlscan"
)

// tinyCollection builds a hand-written collection for precise assertions.
func tinyCollection(docs ...string) *corpus.Collection {
	col := &corpus.Collection{}
	for i, d := range docs {
		col.Docs = append(col.Docs, corpus.Document{ID: i, Data: []byte(d)})
	}
	return col
}

func TestIncomingSummaryPaths(t *testing.T) {
	col := tinyCollection(
		`<article><bdy><sec><p>x</p></sec><sec><p>y</p><p>z</p></sec></bdy></article>`,
		`<article><bdy><sec><ss1><p>w</p></ss1></sec></bdy></article>`,
	)
	s, err := Build(col, Options{Kind: KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct paths: article, article/bdy, article/bdy/sec,
	// article/bdy/sec/p, article/bdy/sec/ss1, article/bdy/sec/ss1/p = 6.
	if s.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", s.NumNodes())
	}
	if !s.SafeForRetrieval() {
		t.Fatal("incoming summary must be safe")
	}
	// Check extent sizes.
	byPath := make(map[string]*Node)
	for _, n := range s.Nodes {
		byPath[strings.Join(n.Path, "/")] = n
	}
	if byPath["article"].ExtentSize != 2 {
		t.Errorf("article extent = %d, want 2", byPath["article"].ExtentSize)
	}
	if byPath["article/bdy/sec"].ExtentSize != 3 {
		t.Errorf("sec extent = %d, want 3", byPath["article/bdy/sec"].ExtentSize)
	}
	if byPath["article/bdy/sec/p"].ExtentSize != 3 {
		t.Errorf("sec/p extent = %d, want 3", byPath["article/bdy/sec/p"].ExtentSize)
	}
	if byPath["article/bdy/sec/ss1/p"].ExtentSize != 1 {
		t.Errorf("ss1/p extent = %d, want 1", byPath["article/bdy/sec/ss1/p"].ExtentSize)
	}
	// Tree structure: sec's parent is bdy.
	sec := byPath["article/bdy/sec"]
	if s.NodeBySID(sec.Parent) != byPath["article/bdy"] {
		t.Errorf("sec parent = %d", sec.Parent)
	}
	if got := byPath["article/bdy/sec"].XPathExpr(); got != "/article/bdy/sec" {
		t.Errorf("XPathExpr = %q", got)
	}
}

func TestAliasIncomingCollapsesSynonyms(t *testing.T) {
	col := tinyCollection(
		`<article><bdy><sec><p>x</p></sec><ss1><p>y</p></ss1></bdy></article>`,
	)
	aliases := map[string]string{"ss1": "sec", "ss2": "sec"}
	noAlias, err := Build(col, Options{Kind: KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	withAlias, err := Build(col, Options{Kind: KindIncoming, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	// Without aliases: article, bdy, sec, sec/p, ss1, ss1/p = 6 nodes.
	// With aliases ss1 folds into sec: article, bdy, sec, sec/p = 4 nodes.
	if noAlias.NumNodes() != 6 {
		t.Fatalf("no-alias nodes = %d, want 6", noAlias.NumNodes())
	}
	if withAlias.NumNodes() != 4 {
		t.Fatalf("alias nodes = %d, want 4", withAlias.NumNodes())
	}
	// The collapsed sec extent holds both sec and ss1 elements.
	var secNode *Node
	for _, n := range withAlias.Nodes {
		if strings.Join(n.Path, "/") == "article/bdy/sec" {
			secNode = n
		}
	}
	if secNode == nil || secNode.ExtentSize != 2 {
		t.Fatalf("alias sec extent = %+v", secNode)
	}
}

func TestTagSummary(t *testing.T) {
	col := tinyCollection(
		`<article><bdy><sec><p>x</p><p>y</p></sec></bdy></article>`,
		`<article><fm><p>z</p></fm></article>`,
	)
	s, err := Build(col, Options{Kind: KindTag})
	if err != nil {
		t.Fatal(err)
	}
	// Labels: article, bdy, sec, p, fm = 5.
	if s.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", s.NumNodes())
	}
	var pNode *Node
	for _, n := range s.Nodes {
		if n.Label == "p" {
			pNode = n
		}
	}
	if pNode == nil || pNode.ExtentSize != 3 {
		t.Fatalf("p extent = %+v", pNode)
	}
}

func TestTagSummaryUnsafeOnRecursion(t *testing.T) {
	col := tinyCollection(`<a><b><a>x</a></b></a>`)
	s, err := Build(col, Options{Kind: KindTag})
	if err != nil {
		t.Fatal(err)
	}
	if s.SafeForRetrieval() {
		t.Fatal("tag summary over recursive structure must be unsafe")
	}
	// The incoming summary over the same data is safe: a and a/b/a differ.
	inc, err := Build(col, Options{Kind: KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.SafeForRetrieval() {
		t.Fatal("incoming summary must be safe even on recursive structure")
	}
}

func TestAKSummary(t *testing.T) {
	col := tinyCollection(
		`<article><bdy><sec><p>x</p></sec></bdy><fm><p>y</p></fm></article>`,
	)
	// A(1) behaves like the tag summary keyed by last label.
	a1, err := Build(col, Options{Kind: KindAK, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumNodes() != 5 { // article, bdy, sec, p, fm
		t.Fatalf("A(1) nodes = %d, want 5", a1.NumNodes())
	}
	// A(2) distinguishes sec/p from fm/p.
	a2, err := Build(col, Options{Kind: KindAK, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a2.NumNodes() != 6 {
		t.Fatalf("A(2) nodes = %d, want 6", a2.NumNodes())
	}
	if _, err := Build(col, Options{Kind: KindAK}); err == nil {
		t.Fatal("A(k) with K=0 must error")
	}
}

func TestSummaryRefinementHierarchy(t *testing.T) {
	// The incoming summary refines the tag summary (Section 2.1): it can
	// never have fewer nodes.
	col := corpus.GenerateIEEE(40, 17)
	tag, err := Build(col, Options{Kind: KindTag, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Build(col, Options{Kind: KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	if inc.NumNodes() < tag.NumNodes() {
		t.Fatalf("incoming (%d) must refine tag (%d)", inc.NumNodes(), tag.NumNodes())
	}
	// Aliases can only shrink (or keep) the summary.
	incNoAlias, err := Build(col, Options{Kind: KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	if inc.NumNodes() > incNoAlias.NumNodes() {
		t.Fatalf("alias incoming (%d) larger than plain incoming (%d)",
			inc.NumNodes(), incNoAlias.NumNodes())
	}
	if incNoAlias.NumNodes() <= tag.NumNodes() {
		t.Fatalf("plain incoming (%d) should exceed alias tag (%d) on IEEE-style data",
			incNoAlias.NumNodes(), tag.NumNodes())
	}
	// Both count the same total number of elements.
	if tag.TotalExtent() != inc.TotalExtent() {
		t.Fatalf("extent totals differ: %d vs %d", tag.TotalExtent(), inc.TotalExtent())
	}
}

func TestAssignDoc(t *testing.T) {
	col := tinyCollection(
		`<article><bdy><sec><p>x</p></sec></bdy></article>`,
	)
	s, err := Build(col, Options{Kind: KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	root, err := xmlscan.Parse(col.Docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	err = s.AssignDoc(root, func(n *xmlscan.Node, sid int) {
		sn := s.NodeBySID(sid)
		got = append(got, n.Tag+"="+strings.Join(sn.Path, "/"))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"article=article",
		"bdy=article/bdy",
		"sec=article/bdy/sec",
		"p=article/bdy/sec/p",
	}
	if len(got) != len(want) {
		t.Fatalf("AssignDoc = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AssignDoc[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Unknown path errors.
	alien, err := xmlscan.Parse([]byte(`<unseen><thing>x</thing></unseen>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AssignDoc(alien, func(*xmlscan.Node, int) {}); err == nil {
		t.Fatal("AssignDoc over unknown structure must error")
	}
}

func TestSIDsAreDenseAndStable(t *testing.T) {
	col := corpus.GenerateIEEE(10, 3)
	s, err := Build(col, Options{Kind: KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range s.Nodes {
		if n.SID != i+1 {
			t.Fatalf("Nodes[%d].SID = %d", i, n.SID)
		}
		if s.NodeBySID(n.SID) != n {
			t.Fatalf("NodeBySID(%d) mismatch", n.SID)
		}
	}
	if s.NodeBySID(0) != nil || s.NodeBySID(s.NumNodes()+1) != nil {
		t.Fatal("out-of-range NodeBySID must be nil")
	}
	// Rebuild gives identical sid assignment.
	s2, err := Build(col, Options{Kind: KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumNodes() != s.NumNodes() {
		t.Fatalf("rebuild nodes = %d vs %d", s2.NumNodes(), s.NumNodes())
	}
	for i := range s.Nodes {
		if strings.Join(s.Nodes[i].Path, "/") != strings.Join(s2.Nodes[i].Path, "/") {
			t.Fatalf("rebuild sid %d path differs", i+1)
		}
	}
}

func TestBuildPropagatesParseErrors(t *testing.T) {
	col := tinyCollection(`<a><broken`)
	if _, err := Build(col, Options{Kind: KindIncoming}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAliasChainNormalization(t *testing.T) {
	col := tinyCollection(`<a><x>1</x><y>2</y><z>3</z></a>`)
	// Chain x -> y -> z: both x and y must land in z's extent.
	s, err := Build(col, Options{Kind: KindIncoming, Aliases: map[string]string{
		"x": "y", "y": "z",
	}})
	if err != nil {
		t.Fatal(err)
	}
	var zNode *Node
	for _, n := range s.Nodes {
		if n.Label == "z" {
			zNode = n
		}
		if n.Label == "x" || n.Label == "y" {
			t.Fatalf("unresolved alias label %q survived", n.Label)
		}
	}
	if zNode == nil || zNode.ExtentSize != 3 {
		t.Fatalf("z extent = %+v, want 3 elements", zNode)
	}
}

func TestAliasCycleRejected(t *testing.T) {
	col := tinyCollection(`<a><x>1</x></a>`)
	if _, err := Build(col, Options{Kind: KindIncoming, Aliases: map[string]string{
		"x": "y", "y": "x",
	}}); err == nil {
		t.Fatal("alias cycle accepted")
	}
	// A self-alias is a harmless no-op.
	if _, err := Build(col, Options{Kind: KindIncoming, Aliases: map[string]string{
		"x": "x",
	}}); err != nil {
		t.Fatalf("self-alias rejected: %v", err)
	}
}
