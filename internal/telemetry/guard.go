package telemetry

import "sync/atomic"

// Guard detects whether a measurement window had the engine's shared
// I/O counters to itself. The storage pager's stats are engine-global:
// a query that snapshots them before and after its run reads the delta
// of *everything* that happened in between, so a concurrent query — or
// a maintenance flush — silently inflates the numbers. Threading
// per-query counters through every cursor operation would put a
// parameter on the entire storage read path; instead, readers enter
// the guard around their window and writers note their mutations, and
// Exclusive() reports after the fact whether the window was clean.
// Counts from a non-exclusive window are still safe to read (every
// underlying counter is atomic and monotonic) — they are just
// attributed to more than one operation, and the trace flags that via
// Trace.IOExact.
type Guard struct {
	active  atomic.Int64  // readers currently inside a window
	entries atomic.Uint64 // readers that ever entered
	writes  atomic.Uint64 // writer mutations noted
}

// Window is one reader's open measurement window.
type Window struct {
	g       *Guard
	entries uint64
	writes  uint64
	solo    bool
}

// Enter opens a window. Call Exit when the measurement is done.
func (g *Guard) Enter() Window {
	g.active.Add(1)
	e := g.entries.Add(1)
	// solo: no other reader was mid-window when we entered. A reader
	// that enters *after* us is caught by the entries check instead.
	return Window{g: g, entries: e, writes: g.writes.Load(), solo: g.active.Load() == 1}
}

// Exclusive reports whether the window has been free of concurrent
// readers and writer mutations so far. Valid before or after Exit.
func (w Window) Exclusive() bool {
	if w.g == nil {
		return false
	}
	return w.solo && w.g.entries.Load() == w.entries && w.g.writes.Load() == w.writes
}

// Exit closes the window.
func (w Window) Exit() {
	if w.g != nil {
		w.g.active.Add(-1)
	}
}

// NoteWrite marks a writer mutation (a maintenance step that dirties
// the shared counters); any overlapping reader window stops being
// exclusive.
func (g *Guard) NoteWrite() { g.writes.Add(1) }
