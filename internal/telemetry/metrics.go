// Package telemetry is the engine's observability substrate: a
// lock-cheap metrics registry (counters, gauges, bounded histograms)
// exposed in the Prometheus text exposition format, per-query trace
// spans, and a slow-query ring log.
//
// The design splits the hot path from the scrape path. Recording a
// sample is one or two atomic operations and never allocates — queries
// pay for observability in nanoseconds, not locks. Scraping walks the
// registry under a mutex, reads every counter with atomic loads, and
// materializes an immutable Snapshot; mutations after the snapshot do
// not change what it exports. Metrics whose source of truth lives
// elsewhere (the storage pager's I/O counters, the autopilot
// controller's run totals) register as func metrics, read at snapshot
// time, so the same counter is never maintained twice.
//
// Label sets are baked in at registration ("trex_storage_shard_cache_
// hits_total" with shard="3" is one metric object), so the hot path
// never hashes label values. That fits this engine: every label
// combination (shards, strategies, phases) is known when the engine
// opens.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric behavior in the exposition output.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Labels name one metric instance within a family. They are rendered
// (sorted, escaped) once at registration; the hot path never sees them.
type Labels map[string]string

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores float64 bits in
// one atomic word; Set is a plain store, Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (possibly negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bounds are upper bounds of
// non-cumulative buckets; an implicit +Inf bucket catches the rest.
// Observe is two atomic adds plus a short linear scan — no locks, no
// allocation — so it is safe on the query hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// DefDurationBuckets covers query latencies from 50µs to 10s, the range
// the paper's experiments and the web API both live in. Values are
// seconds (the Prometheus base unit for time).
var DefDurationBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// element is the +Inf bucket. Loads are individually atomic; a snapshot
// taken during concurrent Observes may be skewed by in-flight samples.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// entry is one registered metric instance.
type entry struct {
	name   string
	help   string
	kind   Kind
	labels string // pre-rendered `key="value",...` (sorted), or ""

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() uint64  // counter func (scrape-time read)
	gf func() float64 // gauge func (scrape-time read)
}

// Registry holds metrics. Registration takes a mutex (engine-open time);
// recording goes straight to the metric's atomics.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*entry
	entries []*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) register(e *entry) {
	key := e.name + "{" + e.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %s (kind %v vs %v)", key, prev.kind, e.kind))
	}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, kind: KindCounter, labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, kind: KindGauge, labels: renderLabels(labels), g: g})
	return g
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit). Nil bounds use
// DefDurationBuckets.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	h := newHistogram(bounds)
	r.register(&entry{name: name, help: help, kind: KindHistogram, labels: renderLabels(labels), h: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — for counters whose source of truth already exists
// (e.g. the storage pager's atomic I/O stats), so the same event is
// never counted twice.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(&entry{name: name, help: help, kind: KindCounter, labels: renderLabels(labels), cf: fn})
}

// GaugeFunc registers a gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&entry{name: name, help: help, kind: KindGauge, labels: renderLabels(labels), gf: fn})
}

// SnapEntry is one metric's frozen value.
type SnapEntry struct {
	Name   string
	Help   string
	Labels string
	Kind   Kind
	// Value holds counter/gauge values (counters as exact floats: the
	// exposition format is float-typed).
	Value float64
	// Histogram-only fields. Counts are per-bucket (non-cumulative),
	// aligned with Bounds plus a final +Inf bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot is an immutable point-in-time copy of a registry: mutating
// the registry's metrics after Snapshot returns does not change what
// the snapshot exports.
type Snapshot struct {
	Entries []SnapEntry
}

// Snapshot freezes every registered metric. Func metrics are invoked
// here, on the scraper's goroutine, never on the hot path.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	s := &Snapshot{Entries: make([]SnapEntry, 0, len(entries))}
	for _, e := range entries {
		se := SnapEntry{Name: e.name, Help: e.help, Labels: e.labels, Kind: e.kind}
		switch {
		case e.c != nil:
			se.Value = float64(e.c.Value())
		case e.g != nil:
			se.Value = e.g.Value()
		case e.cf != nil:
			se.Value = float64(e.cf())
		case e.gf != nil:
			se.Value = e.gf()
		case e.h != nil:
			se.Bounds = e.h.Bounds()
			se.Counts = e.h.BucketCounts()
			se.Sum = e.h.Sum()
			var n uint64
			for _, c := range se.Counts {
				n += c
			}
			// Derive the count from the bucket loads themselves so the
			// cumulative buckets and _count always agree within one
			// exposition, even under concurrent Observes.
			se.Count = n
		}
		s.Entries = append(s.Entries, se)
	}
	sort.SliceStable(s.Entries, func(i, j int) bool {
		if s.Entries[i].Name != s.Entries[j].Name {
			return s.Entries[i].Name < s.Entries[j].Name
		}
		return s.Entries[i].Labels < s.Entries[j].Labels
	})
	return s
}

// Get returns the frozen entry for (name, labels), if present.
func (s *Snapshot) Get(name string, labels Labels) (SnapEntry, bool) {
	rendered := renderLabels(labels)
	for i := range s.Entries {
		if s.Entries[i].Name == name && s.Entries[i].Labels == rendered {
			return s.Entries[i], true
		}
	}
	return SnapEntry{}, false
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// WriteText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers once per family, samples
// sorted by (name, labels), histogram buckets cumulative with le labels.
func (s *Snapshot) WriteText(w io.Writer) error {
	lastName := ""
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Name != lastName {
			if e.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.Name, escapeHelp(e.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.Name, e.Kind); err != nil {
				return err
			}
			lastName = e.Name
		}
		if e.Kind != KindHistogram {
			if err := writeSample(w, e.Name, e.Labels, "", formatValue(e.Value)); err != nil {
				return err
			}
			continue
		}
		var cum uint64
		for b := range e.Counts {
			cum += e.Counts[b]
			le := "+Inf"
			if b < len(e.Bounds) {
				le = strconv.FormatFloat(e.Bounds[b], 'g', -1, 64)
			}
			if err := writeSample(w, e.Name+"_bucket", e.Labels, `le="`+le+`"`, strconv.FormatUint(cum, 10)); err != nil {
				return err
			}
		}
		if err := writeSample(w, e.Name+"_sum", e.Labels, "", formatValue(e.Sum)); err != nil {
			return err
		}
		if err := writeSample(w, e.Name+"_count", e.Labels, "", strconv.FormatUint(e.Count, 10)); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labels, extraLabel, value string) error {
	all := labels
	if extraLabel != "" {
		if all != "" {
			all += ","
		}
		all += extraLabel
	}
	var err error
	if all == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, all, value)
	}
	return err
}

// WritePrometheus is Snapshot().WriteText in one call — what the
// /metrics handler serves.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}
