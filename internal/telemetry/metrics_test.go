package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: a sample equal
// to a bound lands in that bound's bucket (Prometheus le is <=), one
// epsilon above lands in the next, and everything past the last bound
// lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2.5, 5})
	samples := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // <= 1
		{1.0000001, 1}, {2.5, 1}, // <= 2.5
		{3, 2}, {5, 2}, // <= 5
		{5.0001, 3}, {1e12, 3}, // +Inf
	}
	want := make([]uint64, 4)
	var wantSum float64
	for _, s := range samples {
		h.Observe(s.v)
		want[s.bucket]++
		wantSum += s.v
	}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", h.Count(), len(samples))
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

// TestConcurrentWriters hammers one counter, one gauge and one
// histogram from 64 goroutines; run under -race this is the atomicity
// regression test, and the totals prove no increment was lost.
func TestConcurrentWriters(t *testing.T) {
	const writers = 64
	const perWriter = 1000
	r := NewRegistry()
	c := r.Counter("t_counter", "", nil)
	g := r.Gauge("t_gauge", "", nil)
	h := r.Histogram("t_hist", "", nil, []float64{0.5, 1.5, 2.5})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 3)) // buckets 0, 1, 2
				if i%10 == 0 {
					_ = r.Snapshot() // concurrent scrapes must be safe too
				}
			}
		}(w)
	}
	wg.Wait()

	const total = writers * perWriter
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != float64(total) {
		t.Errorf("gauge = %g, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var wantSum float64
	for i := 0; i < perWriter; i++ {
		wantSum += float64(i % 3)
	}
	if h.Sum() != wantSum*writers {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum*writers)
	}
	counts := h.BucketCounts()
	var n uint64
	for _, b := range counts {
		n += b
	}
	if n != total {
		t.Errorf("bucket total = %d, want %d", n, total)
	}
}

// TestSnapshotIsolation: mutating metrics after Snapshot must not
// change what the snapshot exports.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iso_counter", "", nil)
	g := r.Gauge("iso_gauge", "", nil)
	h := r.Histogram("iso_hist", "", nil, []float64{1, 2})
	c.Add(5)
	g.Set(7)
	h.Observe(0.5)
	h.Observe(1.5)

	snap := r.Snapshot()
	var before strings.Builder
	if err := snap.WriteText(&before); err != nil {
		t.Fatal(err)
	}

	c.Add(100)
	g.Set(-3)
	for i := 0; i < 50; i++ {
		h.Observe(9)
	}

	var after strings.Builder
	if err := snap.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatalf("snapshot changed after mutation:\nbefore:\n%safter:\n%s", before.String(), after.String())
	}
	if e, ok := snap.Get("iso_counter", nil); !ok || e.Value != 5 {
		t.Fatalf("iso_counter = %v, %v; want 5", e.Value, ok)
	}
	if e, ok := snap.Get("iso_hist", nil); !ok || e.Count != 2 {
		t.Fatalf("iso_hist count = %v; want 2", e.Count)
	}
}

// TestExpositionGolden pins the exposition format byte-for-byte: family
// headers, sorted samples, escaped labels, cumulative buckets with
// +Inf, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("trex_requests_total", "Requests served.", Labels{"method": "ta"}).Add(3)
	r.Counter("trex_requests_total", "Requests served.", Labels{"method": "era"}).Add(1)
	r.Gauge("trex_temperature", "Current\nvalue with \"quotes\" and \\.", Labels{"room": `a"b\c`}).Set(36.5)
	h := r.Histogram("trex_latency_seconds", "Latency.", nil, []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	r.CounterFunc("trex_pages_total", "Pages.", nil, func() uint64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP trex_latency_seconds Latency.
# TYPE trex_latency_seconds histogram
trex_latency_seconds_bucket{le="0.1"} 2
trex_latency_seconds_bucket{le="0.5"} 3
trex_latency_seconds_bucket{le="+Inf"} 4
trex_latency_seconds_sum 2.4
trex_latency_seconds_count 4
# HELP trex_pages_total Pages.
# TYPE trex_pages_total counter
trex_pages_total 42
# HELP trex_requests_total Requests served.
# TYPE trex_requests_total counter
trex_requests_total{method="era"} 1
trex_requests_total{method="ta"} 3
# HELP trex_temperature Current\nvalue with "quotes" and \\.
# TYPE trex_temperature gauge
trex_temperature{room="a\"b\\c"} 36.5
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestExpositionEmptyRegistry: an empty registry exposes zero bytes
// without error — the /metrics handler still answers 200.
func TestExpositionEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty registry wrote %q", sb.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", Labels{"a": "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", Labels{"a": "b"})
}

func TestFuncMetricsReadAtSnapshotTime(t *testing.T) {
	r := NewRegistry()
	v := uint64(1)
	r.CounterFunc("fn_total", "", nil, func() uint64 { return v })
	s1 := r.Snapshot()
	v = 9
	s2 := r.Snapshot()
	e1, _ := s1.Get("fn_total", nil)
	e2, _ := s2.Get("fn_total", nil)
	if e1.Value != 1 || e2.Value != 9 {
		t.Fatalf("func metric values = %v, %v; want 1, 9", e1.Value, e2.Value)
	}
}
