package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowLogEntry is one over-budget query. Wall is the client-visible
// latency — with admission control it includes the queue wait, and
// QueueWait attributes that share, so a query that was slow only
// because it queued is distinguishable from one that evaluated slowly.
type SlowLogEntry struct {
	Time        time.Time     `json:"time"`
	Query       string        `json:"query"`
	Method      string        `json:"method"`
	K           int           `json:"k"`
	Wall        time.Duration `json:"-"`
	WallMS      float64       `json:"wallMs"`
	QueueWait   time.Duration `json:"-"`
	QueueWaitMS float64       `json:"queueWaitMs,omitempty"`
	Trace       *Trace        `json:"trace,omitempty"`
}

// SlowLog is a bounded ring buffer of the most recent queries whose
// wall time met the threshold. The hot path pays one atomic load (the
// threshold check); only queries that are already slow take the mutex.
// A threshold <= 0 disables recording entirely.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <= 0 disables

	mu    sync.Mutex
	ring  []SlowLogEntry
	next  int    // ring index the next entry lands in
	total uint64 // entries ever recorded (so wraparound is observable)
}

// NewSlowLog creates a log holding the last capacity slow queries.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	l := &SlowLog{ring: make([]SlowLogEntry, 0, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current slow-query budget.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// SetThreshold replaces the budget; <= 0 disables recording.
func (l *SlowLog) SetThreshold(d time.Duration) { l.threshold.Store(int64(d)) }

// Capacity returns the ring size.
func (l *SlowLog) Capacity() int { return cap(l.ring) }

// Maybe records the entry iff its wall time meets the threshold,
// reporting whether it did. This is the query-path entry point: the
// fast (not-slow) case is a single atomic load.
func (l *SlowLog) Maybe(e SlowLogEntry) bool {
	t := l.threshold.Load()
	if t <= 0 || int64(e.Wall) < t {
		return false
	}
	l.Record(e)
	return true
}

// Record unconditionally appends the entry, evicting the oldest once
// the ring is full.
func (l *SlowLog) Record(e SlowLogEntry) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	e.WallMS = float64(e.Wall.Nanoseconds()) / 1e6
	e.QueueWaitMS = float64(e.QueueWait.Nanoseconds()) / 1e6
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
}

// Entries returns the recorded entries, newest first.
func (l *SlowLog) Entries() []SlowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowLogEntry, 0, len(l.ring))
	// l.next-1 is the newest slot; walk backwards through the ring.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

// Total returns how many entries were ever recorded (>= len(Entries())
// once the ring has wrapped).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
