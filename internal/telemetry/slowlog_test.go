package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdFilter(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	if l.Maybe(SlowLogEntry{Query: "fast", Wall: 9 * time.Millisecond}) {
		t.Fatal("under-threshold query recorded")
	}
	if !l.Maybe(SlowLogEntry{Query: "exact", Wall: 10 * time.Millisecond}) {
		t.Fatal("at-threshold query not recorded (threshold is inclusive)")
	}
	if !l.Maybe(SlowLogEntry{Query: "slow", Wall: time.Second}) {
		t.Fatal("slow query not recorded")
	}
	if got := len(l.Entries()); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}

	l.SetThreshold(0)
	if l.Maybe(SlowLogEntry{Query: "any", Wall: time.Hour}) {
		t.Fatal("disabled log recorded an entry")
	}
	if l.Threshold() != 0 {
		t.Fatalf("threshold = %v", l.Threshold())
	}
}

// TestSlowLogWraparound fills the ring past capacity and checks the
// survivors are exactly the newest entries, newest first, with Total
// still counting everything ever recorded.
func TestSlowLogWraparound(t *testing.T) {
	const capacity = 4
	l := NewSlowLog(capacity, 1)
	for i := 0; i < 11; i++ {
		l.Record(SlowLogEntry{Query: fmt.Sprintf("q%d", i), Wall: time.Duration(i+1) * time.Millisecond})
	}
	if l.Total() != 11 {
		t.Fatalf("total = %d, want 11", l.Total())
	}
	got := l.Entries()
	if len(got) != capacity {
		t.Fatalf("entries = %d, want %d", len(got), capacity)
	}
	for i, want := range []string{"q10", "q9", "q8", "q7"} {
		if got[i].Query != want {
			t.Fatalf("entries[%d] = %q, want %q (newest first)", i, got[i].Query, want)
		}
	}
	if got[0].WallMS != 11 {
		t.Fatalf("wallMs = %v, want 11", got[0].WallMS)
	}
}

func TestSlowLogPartialRingNewestFirst(t *testing.T) {
	l := NewSlowLog(8, 1)
	l.Record(SlowLogEntry{Query: "a", Wall: time.Millisecond})
	l.Record(SlowLogEntry{Query: "b", Wall: time.Millisecond})
	got := l.Entries()
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "a" {
		t.Fatalf("entries = %v", got)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Maybe(SlowLogEntry{Query: "q", Wall: time.Millisecond})
				if i%20 == 0 {
					_ = l.Entries()
					_ = l.Total()
				}
			}
		}()
	}
	wg.Wait()
	if l.Total() != 8*200 {
		t.Fatalf("total = %d, want %d", l.Total(), 8*200)
	}
}
