package telemetry

import (
	"encoding/json"
	"time"
)

// Trace records where one query spent its time: a two-level span tree
// whose root is the query itself and whose children are the evaluation
// phases (translate, plan, retrieve, combine). A nested phase (the
// top-k heap work inside retrieval) is named with a "/" path
// ("retrieve/heap") and its duration is contained in — not additional
// to — its parent's, so summing the top-level spans never exceeds Wall.
//
// Construction is hot-path code: a trace is exactly two allocations
// (the struct and the span backing array) for any query with at most
// maxInlineSpans phases, and span counters are plain struct fields, not
// maps. The trace escapes into the query Result, so it cannot be
// pooled; two allocations is the budget the telemetry overhead
// benchmark holds the query path to.
type Trace struct {
	Query  string
	Method string
	K      int
	Start  time.Time
	Wall   time.Duration
	// Queue is the time the query spent waiting in the admission queue
	// before Start (zero without admission control). It is deliberately
	// a field, not a span: spans partition Wall, and the queue wait
	// happened before the evaluation clock started.
	Queue time.Duration
	// IOExact reports whether the trace's I/O counters describe this
	// query alone: true only when no other query overlapped the
	// measurement window and no maintenance write touched storage
	// during it (the pager's counters are engine-global, so an
	// overlapped window counts the neighbor's pages too).
	IOExact bool
	Spans   []Span
}

// maxInlineSpans is the span capacity preallocated per trace; the query
// path produces at most 5 (translate, plan, retrieve, retrieve/heap,
// combine).
const maxInlineSpans = 8

// Span is one timed phase. Counter fields are zero unless the phase
// produced them; JSON encoding omits zeroes.
type Span struct {
	Name  string
	Start time.Duration // offset from Trace.Start
	Dur   time.Duration
	// Cached marks a translate phase served from the translation cache
	// (no parse, no summary scan).
	Cached bool
	// Method is the strategy the plan phase selected / the retrieve
	// phase ran.
	Method string
	// PageReads / BytesRead are the phase's storage I/O delta: logical
	// page touches (cache hits + misses) and physical backend bytes.
	PageReads uint64
	BytesRead uint64
	// Retrieval-phase counters, copied from retrieval.Stats.
	CursorSteps    int
	SortedAccesses int
	RandomAccesses int
	HeapOps        int
	BlockSkips     int
	// ListReads[i] is the number of entries read from term i's list.
	ListReads []int
	// Items is what the phase produced (retrieval answers before
	// truncation, combined answers, ...).
	Items int
}

// NewTrace starts a trace for one query. The clock starts here.
func NewTrace(query string, k int) *Trace {
	return &Trace{
		Query: query,
		K:     k,
		Start: time.Now(),
		Spans: make([]Span, 0, maxInlineSpans),
	}
}

// StartSpan opens a phase and returns its index (not a pointer: the
// backing array may move if a query somehow exceeds the preallocated
// capacity).
func (t *Trace) StartSpan(name string) int {
	t.Spans = append(t.Spans, Span{Name: name, Start: time.Since(t.Start)})
	return len(t.Spans) - 1
}

// EndSpan closes the phase and returns it for counter attribution.
func (t *Trace) EndSpan(i int) *Span {
	sp := &t.Spans[i]
	sp.Dur = time.Since(t.Start) - sp.Start
	return sp
}

// AddSpan records an already-measured span (used for nested phases
// whose duration was accumulated elsewhere, like retrieve/heap).
func (t *Trace) AddSpan(s Span) *Span {
	t.Spans = append(t.Spans, s)
	return &t.Spans[len(t.Spans)-1]
}

// Finish stamps the total wall time.
func (t *Trace) Finish() { t.Wall = time.Since(t.Start) }

// TopLevelDur sums the durations of non-nested spans (names without
// "/"). The conformance suite asserts this never exceeds Wall.
func (t *Trace) TopLevelDur() time.Duration {
	var sum time.Duration
	for i := range t.Spans {
		if !isNested(t.Spans[i].Name) {
			sum += t.Spans[i].Dur
		}
	}
	return sum
}

// PageReads sums the page-read attribution over non-nested spans: the
// whole query's logical page touches.
func (t *Trace) PageReads() uint64 {
	var sum uint64
	for i := range t.Spans {
		if !isNested(t.Spans[i].Name) {
			sum += t.Spans[i].PageReads
		}
	}
	return sum
}

// BytesRead sums the physical byte attribution over non-nested spans.
func (t *Trace) BytesRead() uint64 {
	var sum uint64
	for i := range t.Spans {
		if !isNested(t.Spans[i].Name) {
			sum += t.Spans[i].BytesRead
		}
	}
	return sum
}

func isNested(name string) bool {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return true
		}
	}
	return false
}

// FindSpan returns the first span with the given name.
func (t *Trace) FindSpan(name string) *Span {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// spanJSON / traceJSON are the wire shapes: durations in microseconds
// (floats — queries at this scale are sub-millisecond), zero counters
// omitted. JSON encoding runs on the scrape/response path, where
// allocation is fine.
type spanJSON struct {
	Name           string  `json:"name"`
	StartUS        float64 `json:"startUs"`
	US             float64 `json:"us"`
	Cached         bool    `json:"cached,omitempty"`
	Method         string  `json:"method,omitempty"`
	PageReads      uint64  `json:"pageReads,omitempty"`
	BytesRead      uint64  `json:"bytesRead,omitempty"`
	CursorSteps    int     `json:"cursorSteps,omitempty"`
	SortedAccesses int     `json:"sortedAccesses,omitempty"`
	RandomAccesses int     `json:"randomAccesses,omitempty"`
	HeapOps        int     `json:"heapOps,omitempty"`
	BlockSkips     int     `json:"blockSkips,omitempty"`
	ListReads      []int   `json:"listReads,omitempty"`
	Items          int     `json:"items,omitempty"`
}

type traceJSON struct {
	Query   string     `json:"query"`
	Method  string     `json:"method"`
	K       int        `json:"k"`
	WallUS  float64    `json:"wallUs"`
	QueueUS float64    `json:"queueUs,omitempty"`
	IOExact bool       `json:"ioExact"`
	Spans   []spanJSON `json:"spans"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// MarshalJSON implements json.Marshaler.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := traceJSON{
		Query:   t.Query,
		Method:  t.Method,
		K:       t.K,
		WallUS:  us(t.Wall),
		QueueUS: us(t.Queue),
		IOExact: t.IOExact,
		Spans:   make([]spanJSON, len(t.Spans)),
	}
	for i := range t.Spans {
		sp := &t.Spans[i]
		out.Spans[i] = spanJSON{
			Name:           sp.Name,
			StartUS:        us(sp.Start),
			US:             us(sp.Dur),
			Cached:         sp.Cached,
			Method:         sp.Method,
			PageReads:      sp.PageReads,
			BytesRead:      sp.BytesRead,
			CursorSteps:    sp.CursorSteps,
			SortedAccesses: sp.SortedAccesses,
			RandomAccesses: sp.RandomAccesses,
			HeapOps:        sp.HeapOps,
			BlockSkips:     sp.BlockSkips,
			ListReads:      sp.ListReads,
			Items:          sp.Items,
		}
	}
	return json.Marshal(out)
}
