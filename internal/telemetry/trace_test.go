package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("//a[about(., x)]", 10)
	i := tr.StartSpan("translate")
	time.Sleep(time.Millisecond)
	tr.EndSpan(i).Cached = true

	j := tr.StartSpan("retrieve")
	time.Sleep(time.Millisecond)
	sp := tr.EndSpan(j)
	sp.Method = "ta"
	sp.PageReads = 7
	sp.BytesRead = 4096
	tr.AddSpan(Span{Name: "retrieve/heap", Start: sp.Start, Dur: sp.Dur / 2})
	tr.Finish()

	if tr.Wall <= 0 {
		t.Fatal("wall not stamped")
	}
	if got := tr.TopLevelDur(); got > tr.Wall {
		t.Fatalf("top-level span sum %v exceeds wall %v", got, tr.Wall)
	}
	// Nested spans (name contains "/") must not count toward the
	// aggregate I/O or duration sums.
	if tr.PageReads() != 7 || tr.BytesRead() != 4096 {
		t.Fatalf("aggregates = %d pages / %d bytes", tr.PageReads(), tr.BytesRead())
	}
	if tr.FindSpan("retrieve/heap") == nil || tr.FindSpan("nope") != nil {
		t.Fatal("FindSpan misbehaved")
	}
	if tr.FindSpan("translate").Dur <= 0 {
		t.Fatal("translate span has no duration")
	}
}

// TestTraceAllocs pins the hot-path budget: building a trace with the
// usual phase count costs exactly two allocations (the struct and the
// span array).
func TestTraceAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		tr := NewTrace("q", 5)
		a := tr.StartSpan("translate")
		tr.EndSpan(a)
		b := tr.StartSpan("plan")
		tr.EndSpan(b).Method = "era"
		c := tr.StartSpan("retrieve")
		sp := tr.EndSpan(c)
		sp.PageReads = 1
		tr.AddSpan(Span{Name: "retrieve/heap"})
		d := tr.StartSpan("combine")
		tr.EndSpan(d)
		tr.Finish()
	})
	if allocs > 2 {
		t.Fatalf("trace construction = %.1f allocs, want <= 2", allocs)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace("q", 3)
	i := tr.StartSpan("retrieve")
	sp := tr.EndSpan(i)
	sp.Method = "merge"
	sp.BlockSkips = 9
	tr.Finish()
	tr.Method = "merge"
	tr.IOExact = true

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["query"] != "q" || out["method"] != "merge" || out["ioExact"] != true {
		t.Fatalf("trace json = %s", data)
	}
	spans := out["spans"].([]any)
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	s0 := spans[0].(map[string]any)
	if s0["name"] != "retrieve" || s0["blockSkips"] != float64(9) {
		t.Fatalf("span json = %v", s0)
	}
	if _, ok := s0["pageReads"]; ok {
		t.Fatal("zero counter not omitted from span json")
	}
}

func TestGuardExclusivity(t *testing.T) {
	var g Guard

	// A lone window is exclusive.
	w := g.Enter()
	if !w.Exclusive() {
		t.Fatal("lone window not exclusive")
	}
	w.Exit()

	// A write during the window taints it.
	w = g.Enter()
	g.NoteWrite()
	if w.Exclusive() {
		t.Fatal("window exclusive despite write")
	}
	w.Exit()

	// An overlapping reader taints both: the one that was inside first
	// (entries moved) and the one that entered second (not solo).
	w1 := g.Enter()
	w2 := g.Enter()
	if w1.Exclusive() || w2.Exclusive() {
		t.Fatal("overlapping windows reported exclusive")
	}
	w1.Exit()
	w2.Exit()

	// Sequential windows are independent.
	w = g.Enter()
	if !w.Exclusive() {
		t.Fatal("fresh window tainted by past traffic")
	}
	w.Exit()
}

func TestGuardConcurrent(t *testing.T) {
	var g Guard
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				w := g.Enter()
				_ = w.Exclusive()
				w.Exit()
				if j%50 == 0 {
					g.NoteWrite()
				}
			}
		}()
	}
	wg.Wait()
	if g.active.Load() != 0 {
		t.Fatalf("active = %d after all exits", g.active.Load())
	}
}
