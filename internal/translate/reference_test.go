package translate

import (
	"math/rand"
	"sort"
	"testing"

	"trex/internal/corpus"
	"trex/internal/summary"
	"trex/internal/xmlscan"
)

// naiveMatches evaluates a descendant-step pattern directly over a parsed
// document, with an algorithm independent of matchPath: a DFS carrying
// the greedy count of leading pattern steps matched among proper
// ancestors. It returns the matching elements as (start, end) spans.
func naiveMatches(root *xmlscan.Node, pattern []string, aliases map[string]string) [][2]int {
	resolve := func(label string) string {
		if a, ok := aliases[label]; ok {
			return a
		}
		return label
	}
	m := len(pattern)
	var out [][2]int
	var dfs func(n *xmlscan.Node, c int)
	dfs = func(n *xmlscan.Node, c int) {
		label := resolve(n.Tag)
		if c == m-1 && (pattern[m-1] == "*" || pattern[m-1] == label) {
			out = append(out, [2]int{n.Start, n.End})
		}
		next := c
		if c < m-1 && (pattern[c] == "*" || pattern[c] == label) {
			next = c + 1
		}
		for _, child := range n.Children {
			dfs(child, next)
		}
	}
	if m > 0 {
		dfs(root, 0)
	}
	return out
}

// summaryMatches computes the same element set via the translation path:
// match sids against the summary, then collect elements in those extents
// by re-walking documents with AssignDoc.
func summaryMatches(t *testing.T, col *corpus.Collection, sum *summary.Summary, pattern []string) [][2]int {
	t.Helper()
	sids := matchSIDs(sum, pattern, ModeVague)
	sidSet := make(map[int]bool, len(sids))
	for _, s := range sids {
		sidSet[int(s)] = true
	}
	var out [][2]int
	for _, d := range col.Docs {
		root, err := xmlscan.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		err = sum.AssignDoc(root, func(n *xmlscan.Node, sid int) {
			if sidSet[sid] {
				out = append(out, [2]int{n.Start, n.End})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func sortSpans(s [][2]int) {
	sort.Slice(s, func(i, j int) bool {
		if s[i][0] != s[j][0] {
			return s[i][0] < s[j][0]
		}
		return s[i][1] < s[j][1]
	})
}

// TestTranslationMatchesNaiveEvaluation is the translation-correctness
// property: for random descendant patterns, the summary-extent route and
// the naive tree evaluation select exactly the same elements.
func TestTranslationMatchesNaiveEvaluation(t *testing.T) {
	for _, style := range []corpus.Style{corpus.StyleIEEE, corpus.StyleWiki} {
		var col *corpus.Collection
		if style == corpus.StyleWiki {
			col = corpus.GenerateWiki(15, 13)
		} else {
			col = corpus.GenerateIEEE(15, 13)
		}
		sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming, Aliases: col.Aliases})
		if err != nil {
			t.Fatal(err)
		}
		// The label alphabet: every label in the summary plus the raw
		// synonyms and "*".
		labelSet := make(map[string]bool)
		for _, n := range sum.Nodes {
			labelSet[n.Label] = true
		}
		for raw := range col.Aliases {
			labelSet[raw] = true
		}
		var labels []string
		for l := range labelSet {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		labels = append(labels, "*")

		rng := rand.New(rand.NewSource(99))
		// Pre-parse documents once; naive evaluation reuses the trees.
		roots := make([]*xmlscan.Node, len(col.Docs))
		for i, d := range col.Docs {
			root, err := xmlscan.Parse(d.Data)
			if err != nil {
				t.Fatal(err)
			}
			roots[i] = root
		}
		for trial := 0; trial < 120; trial++ {
			plen := 1 + rng.Intn(4)
			pattern := make([]string, plen)
			for i := range pattern {
				pattern[i] = labels[rng.Intn(len(labels))]
			}
			var naive [][2]int
			for _, root := range roots {
				naive = append(naive, naiveMatches(root, resolvePattern(pattern, col.Aliases), col.Aliases)...)
			}
			viaSummary := summaryMatches(t, col, sum, pattern)
			sortSpans(naive)
			sortSpans(viaSummary)
			if len(naive) != len(viaSummary) {
				t.Fatalf("%v pattern %v: naive %d matches, summary %d",
					style, pattern, len(naive), len(viaSummary))
			}
			for i := range naive {
				if naive[i] != viaSummary[i] {
					t.Fatalf("%v pattern %v: match %d differs: %v vs %v",
						style, pattern, i, naive[i], viaSummary[i])
				}
			}
		}
	}
}

// resolvePattern applies aliases to pattern labels, mirroring what
// ModeVague does before sid matching (the naive evaluator then runs
// alias-free on already-resolved labels — but the document tags still
// need resolving, so it receives the alias map for tags separately).
func resolvePattern(pattern []string, aliases map[string]string) []string {
	out := make([]string, len(pattern))
	for i, l := range pattern {
		out[i] = l
		if l != "*" {
			if a, ok := aliases[l]; ok {
				out[i] = a
			}
		}
	}
	return out
}

// The naive evaluator must resolve document tags with the alias map too;
// wire that by wrapping naiveMatches in the test above. Verify the helper
// itself on a hand case.
func TestNaiveMatchesHandCase(t *testing.T) {
	doc := `<article><bdy><sec><p>x</p></sec><sec><ss1><p>y</p></ss1></sec></bdy></article>`
	root, err := xmlscan.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	aliases := map[string]string{"ss1": "sec"}
	// //article//sec//p with aliases: both p elements match.
	got := naiveMatches(root, []string{"article", "sec", "p"}, aliases)
	if len(got) != 2 {
		t.Fatalf("matches = %v, want 2", got)
	}
	// //sec//sec matches only the aliased ss1 (a sec inside a sec).
	got = naiveMatches(root, []string{"sec", "sec"}, aliases)
	if len(got) != 1 {
		t.Fatalf("sec//sec matches = %v, want 1", got)
	}
	// Wildcard leading step.
	got = naiveMatches(root, []string{"*", "p"}, nil)
	if len(got) != 2 {
		t.Fatalf("*//p matches = %v, want 2", got)
	}
}
