// Package translate implements the translation phase of TReX query
// evaluation (Section 3.1 of the paper): each path from the query root to
// an about() function becomes a set of summary node ids (sids) and a set
// of terms. The retrieval phase then works purely on (sids, terms) lists.
//
// Under the vague interpretation, tag names may be replaced by synonyms;
// TReX realizes this through the alias mapping, which this package applies
// to query labels before matching them against the (alias-resolved)
// summary paths. Under the strict interpretation labels must match the
// stored paths exactly.
package translate

import (
	"fmt"
	"sort"

	"trex/internal/nexi"
	"trex/internal/summary"
)

// Mode selects the NEXI interpretation.
type Mode int

const (
	// ModeVague relaxes structural constraints via the alias mapping.
	ModeVague Mode = iota
	// ModeStrict requires exact label matches.
	ModeStrict
)

func (m Mode) String() string {
	if m == ModeStrict {
		return "strict"
	}
	return "vague"
}

// Clause is the translation of one about(): the sids whose extents can
// hold matching elements, and the terms to search for.
type Clause struct {
	// StepIndex is the query step carrying the about().
	StepIndex int
	// RelPath is the about's relative path ("." is empty).
	RelPath []string
	// Pattern is the absolute descendant-step pattern the sids were
	// matched with (query steps up to StepIndex plus RelPath).
	Pattern []string
	// SIDs are the summary nodes whose extents intersect the pattern's
	// result, ascending.
	SIDs []uint32
	// Terms are the about's keywords (including Minus terms).
	Terms []nexi.Term
	// IsTarget marks the clause that scores the answer elements
	// themselves: an about on the last step with an empty relative path.
	IsTarget bool
}

// PositiveTerms returns the clause's non-negated words.
func (c *Clause) PositiveTerms() []string {
	var out []string
	for _, t := range c.Terms {
		if t.Minus {
			continue
		}
		out = append(out, t.Words()...)
	}
	return out
}

// NegativeTerms returns the clause's negated words.
func (c *Clause) NegativeTerms() []string {
	var out []string
	for _, t := range c.Terms {
		if !t.Minus {
			continue
		}
		out = append(out, t.Words()...)
	}
	return out
}

// Translation is the full translation of a NEXI query.
type Translation struct {
	Query *nexi.Query
	Mode  Mode
	// TargetSIDs are the extents of answer elements (the last step).
	TargetSIDs []uint32
	// Clauses, one per about() in syntactic order.
	Clauses []Clause
}

// NumSIDs returns the total sid count across clauses — the "# sids" column
// of the paper's Table 1.
func (tr *Translation) NumSIDs() int {
	n := 0
	for i := range tr.Clauses {
		n += len(tr.Clauses[i].SIDs)
	}
	return n
}

// NumTerms returns the total term count across clauses — the "# terms"
// column of Table 1.
func (tr *Translation) NumTerms() int {
	n := 0
	for i := range tr.Clauses {
		for _, t := range tr.Clauses[i].Terms {
			n += len(t.Words())
		}
	}
	return n
}

// DistinctTerms returns the union of positive words across clauses.
func (tr *Translation) DistinctTerms() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range tr.Clauses {
		for _, w := range tr.Clauses[i].PositiveTerms() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// Translate computes the translation of q over sum.
func Translate(q *nexi.Query, sum *summary.Summary, mode Mode) (*Translation, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("translate: empty query")
	}
	abouts := q.Abouts()
	if len(abouts) == 0 {
		return nil, fmt.Errorf("translate: retrieval query needs at least one about()")
	}
	tr := &Translation{Query: q, Mode: mode}

	stepNames := make([]string, len(q.Steps))
	for i, s := range q.Steps {
		stepNames[i] = s.Name
	}
	tr.TargetSIDs = matchSIDs(sum, stepNames, mode)

	last := len(q.Steps) - 1
	for _, qa := range abouts {
		pattern := append([]string(nil), stepNames[:qa.StepIndex+1]...)
		pattern = append(pattern, qa.About.Path...)
		c := Clause{
			StepIndex: qa.StepIndex,
			RelPath:   qa.About.Path,
			Pattern:   pattern,
			SIDs:      matchSIDs(sum, pattern, mode),
			Terms:     qa.About.Terms,
			IsTarget:  qa.StepIndex == last && len(qa.About.Path) == 0,
		}
		tr.Clauses = append(tr.Clauses, c)
	}
	return tr, nil
}

// matchSIDs returns the sids of all summary nodes whose path matches the
// descendant-step pattern, ascending.
func matchSIDs(sum *summary.Summary, pattern []string, mode Mode) []uint32 {
	resolved := make([]string, len(pattern))
	for i, lbl := range pattern {
		resolved[i] = lbl
		if mode == ModeVague && lbl != "*" && sum.Aliases != nil {
			if a, ok := sum.Aliases[lbl]; ok {
				resolved[i] = a
			}
		}
	}
	var sids []uint32
	for _, n := range sum.Nodes {
		if matchPath(resolved, n.Path) {
			sids = append(sids, uint32(n.SID))
		}
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	return sids
}

// matchPath reports whether a descendant-axis pattern matches a label
// path. The last pattern step must match the path's final label; the
// preceding steps must appear in order among the path's proper ancestors.
// "*" matches any label.
func matchPath(pattern, path []string) bool {
	m, n := len(pattern), len(path)
	if m == 0 || n == 0 {
		return false
	}
	if !stepMatches(pattern[m-1], path[n-1]) {
		return false
	}
	// Subsequence match of pattern[:m-1] within path[:n-1].
	i := 0
	for j := 0; j < n-1 && i < m-1; j++ {
		if stepMatches(pattern[i], path[j]) {
			i++
		}
	}
	return i == m-1
}

func stepMatches(step, label string) bool {
	return step == "*" || step == label
}
