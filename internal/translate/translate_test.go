package translate

import (
	"reflect"
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/nexi"
	"trex/internal/summary"
)

func buildSummary(t *testing.T, aliases map[string]string, docs ...string) *summary.Summary {
	t.Helper()
	col := &corpus.Collection{Aliases: aliases}
	for i, d := range docs {
		col.Docs = append(col.Docs, corpus.Document{ID: i, Data: []byte(d)})
	}
	s, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pathSID(t *testing.T, s *summary.Summary, path string) uint32 {
	t.Helper()
	for _, n := range s.Nodes {
		if strings.Join(n.Path, "/") == path {
			return uint32(n.SID)
		}
	}
	t.Fatalf("no node for %q", path)
	return 0
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"article", "article", true},
		{"article", "article/bdy", false}, // last step must match final label
		{"sec", "article/bdy/sec", true},
		{"article sec", "article/bdy/sec", true},
		{"article sec", "article/bdy/sec/p", false},
		{"article bdy sec", "article/bdy/sec", true},
		{"article sec p", "article/bdy/sec/p", true},
		{"bdy article sec", "article/bdy/sec", false}, // order matters
		{"* sec", "article/bdy/sec", true},
		{"*", "anything/at/all", true},
		{"article * p", "article/bdy/sec/p", true},
		{"sec sec", "article/bdy/sec", false},
		{"sec sec", "article/bdy/sec/sec", true},
	}
	for _, tc := range cases {
		pattern := strings.Fields(tc.pattern)
		path := strings.Split(tc.path, "/")
		if got := matchPath(pattern, path); got != tc.want {
			t.Errorf("matchPath(%v, %v) = %v, want %v", pattern, path, got, tc.want)
		}
	}
}

func TestTranslateSimple(t *testing.T) {
	s := buildSummary(t, nil,
		`<article><bdy><sec><p>x</p></sec></bdy><fm><p>t</p></fm></article>`,
	)
	q := nexi.MustParse(`//article[about(., xml)]//sec[about(., query evaluation)]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(tr.Clauses))
	}
	artSID := pathSID(t, s, "article")
	secSID := pathSID(t, s, "article/bdy/sec")
	if !reflect.DeepEqual(tr.Clauses[0].SIDs, []uint32{artSID}) {
		t.Fatalf("article clause sids = %v, want [%d]", tr.Clauses[0].SIDs, artSID)
	}
	if !reflect.DeepEqual(tr.Clauses[1].SIDs, []uint32{secSID}) {
		t.Fatalf("sec clause sids = %v, want [%d]", tr.Clauses[1].SIDs, secSID)
	}
	if !reflect.DeepEqual(tr.TargetSIDs, []uint32{secSID}) {
		t.Fatalf("target sids = %v", tr.TargetSIDs)
	}
	if tr.Clauses[0].IsTarget || !tr.Clauses[1].IsTarget {
		t.Fatalf("IsTarget flags = %v, %v", tr.Clauses[0].IsTarget, tr.Clauses[1].IsTarget)
	}
	if tr.NumSIDs() != 2 || tr.NumTerms() != 3 {
		t.Fatalf("NumSIDs=%d NumTerms=%d", tr.NumSIDs(), tr.NumTerms())
	}
	if got := tr.DistinctTerms(); !reflect.DeepEqual(got, []string{"xml", "query", "evaluation"}) {
		t.Fatalf("DistinctTerms = %v", got)
	}
}

func TestTranslateVagueUsesAliases(t *testing.T) {
	aliases := map[string]string{"ss1": "sec", "ss2": "sec"}
	s := buildSummary(t, aliases,
		`<article><bdy><sec><p>x</p></sec><ss1><p>y</p></ss1></bdy></article>`,
	)
	// In the aliased summary ss1 is folded into sec paths.
	q := nexi.MustParse(`//article//ss1[about(., foo)]`)
	vague, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	// Vague: ss1 -> sec matches both article/bdy/sec extents.
	if len(vague.TargetSIDs) == 0 {
		t.Fatal("vague translation found no sids for aliased tag")
	}
	strict, err := Translate(q, s, ModeStrict)
	if err != nil {
		t.Fatal(err)
	}
	// Strict: the aliased summary contains no literal "ss1" labels.
	if len(strict.TargetSIDs) != 0 {
		t.Fatalf("strict translation matched %v", strict.TargetSIDs)
	}
}

func TestTranslateWildcardStep(t *testing.T) {
	s := buildSummary(t, nil,
		`<article><bdy><sec><p>x</p></sec><fig><fgc>c</fgc></fig></bdy></article>`,
	)
	q := nexi.MustParse(`//bdy//*[about(., anything)]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	// All strict descendants of bdy: sec, sec/p, fig, fig/fgc = 4.
	if len(tr.TargetSIDs) != 4 {
		t.Fatalf("wildcard target sids = %v, want 4 nodes", tr.TargetSIDs)
	}
}

func TestTranslateRelativePathAbout(t *testing.T) {
	s := buildSummary(t, nil,
		`<article><bdy><sec><p>x</p></sec></bdy></article>`,
	)
	q := nexi.MustParse(`//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(tr.Clauses))
	}
	bdySID := pathSID(t, s, "article/bdy")
	for i, c := range tr.Clauses {
		if !reflect.DeepEqual(c.SIDs, []uint32{bdySID}) {
			t.Fatalf("clause %d sids = %v", i, c.SIDs)
		}
		if c.IsTarget {
			t.Fatalf("clause %d should not be target (relative path)", i)
		}
	}
	// Answers are article elements.
	artSID := pathSID(t, s, "article")
	if !reflect.DeepEqual(tr.TargetSIDs, []uint32{artSID}) {
		t.Fatalf("target sids = %v", tr.TargetSIDs)
	}
}

func TestTranslateNegatedTerms(t *testing.T) {
	s := buildSummary(t, nil,
		`<article><figure><caption>x</caption></figure></article>`,
	)
	q := nexi.MustParse(`//article//figure[about(., renaissance painting -french -german)]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Clauses[0]
	if got := c.PositiveTerms(); !reflect.DeepEqual(got, []string{"renaissance", "painting"}) {
		t.Fatalf("positive = %v", got)
	}
	if got := c.NegativeTerms(); !reflect.DeepEqual(got, []string{"french", "german"}) {
		t.Fatalf("negative = %v", got)
	}
	// NumTerms counts all words, including negated ones.
	if tr.NumTerms() != 4 {
		t.Fatalf("NumTerms = %d", tr.NumTerms())
	}
}

func TestTranslateNoAboutFails(t *testing.T) {
	s := buildSummary(t, nil, `<a><b>x</b></a>`)
	q := &nexi.Query{Steps: []nexi.Step{{Name: "a"}}}
	if _, err := Translate(q, s, ModeVague); err == nil {
		t.Fatal("expected error for query without about()")
	}
	empty := &nexi.Query{}
	if _, err := Translate(empty, s, ModeVague); err == nil {
		t.Fatal("expected error for empty query")
	}
}

func TestTranslateNoMatchesIsEmptyNotError(t *testing.T) {
	s := buildSummary(t, nil, `<a><b>x</b></a>`)
	q := nexi.MustParse(`//nonexistent[about(., foo)]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TargetSIDs) != 0 || len(tr.Clauses[0].SIDs) != 0 {
		t.Fatalf("expected empty translation, got %v / %v", tr.TargetSIDs, tr.Clauses[0].SIDs)
	}
	if ModeVague.String() != "vague" || ModeStrict.String() != "strict" {
		t.Fatal("mode strings")
	}
}

func TestTranslatePhraseTermsCounted(t *testing.T) {
	s := buildSummary(t, nil, `<article><p>x</p></article>`)
	q := nexi.MustParse(`//article[about(., "genetic algorithm")]`)
	tr, err := Translate(q, s, ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTerms() != 2 {
		t.Fatalf("NumTerms = %d, want 2 (phrase words)", tr.NumTerms())
	}
	if got := tr.Clauses[0].PositiveTerms(); !reflect.DeepEqual(got, []string{"genetic", "algorithm"}) {
		t.Fatalf("positive = %v", got)
	}
}
