package webapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trex"
	"trex/internal/cluster"
	"trex/internal/frontdoor"
	"trex/internal/index"
)

// ClusterServer wires a sharded cluster coordinator into an
// http.Handler with the same JSON API shape as the single-engine
// Server, plus the distributed accounting.
//
// Endpoints:
//
//	GET  /search?q=<nexi>&k=10&method=...&snippets=1&deadline=50ms
//	GET  /cluster     (topology: per-replica liveness and epochs)
//	GET  /stats
//	GET  /metrics     (coordinator registry; ?shard=N[&replica=R] for one engine's)
//	POST /materialize?q=<nexi>&kinds=rpl,erpl   (fanned out to every replica)
//	GET  /            (the same minimal HTML search page)
type ClusterServer struct {
	cl  *cluster.Cluster
	mux *http.ServeMux
	// AllowWrites enables the /materialize endpoint (a replicated write);
	// off by default so a public coordinator cannot be mutated.
	AllowWrites bool
}

// NewCluster creates a server over the cluster coordinator.
func NewCluster(cl *cluster.Cluster, allowWrites bool) *ClusterServer {
	s := &ClusterServer{cl: cl, AllowWrites: allowWrites}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /materialize", s.handleMaterialize)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *ClusterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ClusterQueryInfo is the distributed accounting attached to a
// coordinator-served /search response.
type ClusterQueryInfo struct {
	Shards     int              `json:"shards"`
	Rounds     int              `json:"rounds"`
	Fetches    int              `json:"fetches"`
	EarlyStops int              `json:"earlyStops"`
	Failovers  int              `json:"failovers"`
	PerShard   []ShardQueryInfo `json:"perShard,omitempty"`
}

// ShardQueryInfo is one shard's slice of a query's scatter-gather.
type ShardQueryInfo struct {
	Shard     int    `json:"shard"`
	Replica   int    `json:"replica"`
	Fetches   int    `json:"fetches"`
	Answers   int    `json:"answers"`
	PageReads uint64 `json:"pageReads"`
	EarlyStop bool   `json:"earlyStop,omitempty"`
	Exhausted bool   `json:"exhausted,omitempty"`
}

func clusterInfo(cs cluster.ClusterStats) *ClusterQueryInfo {
	info := &ClusterQueryInfo{
		Shards:     cs.Shards,
		Rounds:     cs.Rounds,
		Fetches:    cs.Fetches,
		EarlyStops: cs.EarlyStops,
		Failovers:  cs.Failovers,
	}
	for i, ps := range cs.PerShard {
		info.PerShard = append(info.PerShard, ShardQueryInfo{
			Shard:     i,
			Replica:   ps.Replica,
			Fetches:   ps.Fetches,
			Answers:   ps.Answers,
			PageReads: ps.PageReads,
			EarlyStop: ps.EarlyStop,
			Exhausted: ps.Exhausted,
		})
	}
	return info
}

func (s *ClusterServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	k := trex.DefaultK
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
		k = v
	}
	method, err := parseMethod(r.URL.Query().Get("method"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if ds := r.URL.Query().Get("deadline"); ds != "" {
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad deadline %q", ds))
			return
		}
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, err := s.cl.QueryOptsCtx(ctx, q, trex.QueryOptions{K: k, Method: method})
	if err != nil {
		switch {
		case errors.Is(err, frontdoor.ErrShed):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, frontdoor.ErrQueueTimeout):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := SearchResponse{
		Query:        q,
		Method:       res.Method.String(),
		K:            k,
		TotalAnswers: res.TotalAnswers,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
		NumSIDs:      res.Translation.NumSIDs(),
		NumTerms:     res.Translation.NumTerms(),
		Cluster:      clusterInfo(res.Cluster),
	}
	if res.Stats != nil {
		resp.PageReads = res.Stats.PageReads
		resp.BytesRead = res.Stats.BytesRead
	}
	resp.Approximate = res.Approximate
	resp.Cached = res.Cached
	wantSnippets := r.URL.Query().Get("snippets") == "1"
	terms := res.Translation.DistinctTerms()
	for i, a := range res.Answers {
		hit := SearchHit{
			Rank:  i + 1,
			Score: a.Score,
			Doc:   a.Doc,
			Start: a.Start,
			End:   a.End,
			Path:  a.Path,
		}
		if wantSnippets {
			if snip, err := s.cl.Snippet(a, terms, 160); err == nil {
				hit.Snippet = snip
			}
		}
		resp.Hits = append(resp.Hits, hit)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCluster reports the serving topology: per-replica liveness and
// applied epochs against each shard's write epoch, so lag and dead
// replicas are visible at a glance.
func (s *ClusterServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	type replicaStatus struct {
		Replica int    `json:"replica"`
		Up      bool   `json:"up"`
		Epoch   uint64 `json:"epoch"`
	}
	type shardStatus struct {
		Shard    int             `json:"shard"`
		Epoch    uint64          `json:"epoch"`
		Replicas []replicaStatus `json:"replicas"`
	}
	shards := make([]shardStatus, s.cl.Shards())
	for si := range shards {
		st := shardStatus{Shard: si, Epoch: s.cl.ShardEpoch(si)}
		for ri := 0; ri < s.cl.Replicas(); ri++ {
			st.Replicas = append(st.Replicas, replicaStatus{
				Replica: ri,
				Up:      s.cl.ReplicaUp(si, ri),
				Epoch:   s.cl.ReplicaEpoch(si, ri),
			})
		}
		shards[si] = st
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   s.cl.Shards(),
		"replicas": s.cl.Replicas(),
		"epoch":    s.cl.Epoch(),
		"topology": shards,
	})
}

// liveEngine returns any live replica engine (global statistics are
// synced to every replica, so all of them agree on collection-wide
// numbers).
func (s *ClusterServer) liveEngine() *trex.Engine {
	for si := 0; si < s.cl.Shards(); si++ {
		for ri := 0; ri < s.cl.Replicas(); ri++ {
			if s.cl.ReplicaUp(si, ri) {
				return s.cl.Engine(si, ri)
			}
		}
	}
	return nil
}

func (s *ClusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	eng := s.liveEngine()
	if eng == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no live replicas"))
		return
	}
	cs, err := eng.Store().CollectionStats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"numDocs":       cs.NumDocs,
		"numElements":   cs.NumElements,
		"avgElementLen": cs.AvgElementLen,
		"summaryNodes":  eng.Summary().NumNodes(),
		"shards":        s.cl.Shards(),
		"replicas":      s.cl.Replicas(),
		"epoch":         s.cl.Epoch(),
	})
}

// handleMetrics serves the coordinator's trex_cluster_* registry, or —
// with ?shard=N[&replica=R] — one replica engine's registry, in the
// Prometheus text exposition format.
func (s *ClusterServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if ss := r.URL.Query().Get("shard"); ss != "" {
		si, err := strconv.Atoi(ss)
		if err != nil || si < 0 || si >= s.cl.Shards() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", ss))
			return
		}
		ri := 0
		if rs := r.URL.Query().Get("replica"); rs != "" {
			ri, err = strconv.Atoi(rs)
			if err != nil || ri < 0 || ri >= s.cl.Replicas() {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad replica %q", rs))
				return
			}
		}
		reg := s.cl.Engine(si, ri).MetricsRegistry()
		if reg == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("telemetry disabled on shard %d replica %d", si, ri))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = reg.WritePrometheus(w)
		return
	}
	reg := s.cl.MetricsRegistry()
	if reg == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("cluster metrics disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

// handleMaterialize fans the materialization out through the sequenced
// apply channel so every replica commits the same lists at the same
// epoch.
func (s *ClusterServer) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	if !s.AllowWrites {
		writeErr(w, http.StatusForbidden, fmt.Errorf("writes disabled on this server"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	kinds := []index.ListKind{index.KindRPL, index.KindERPL}
	if ks := r.URL.Query().Get("kinds"); ks != "" {
		kinds = nil
		for _, part := range strings.Split(ks, ",") {
			switch strings.TrimSpace(part) {
			case "rpl":
				kinds = append(kinds, index.KindRPL)
			case "erpl":
				kinds = append(kinds, index.KindERPL)
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", part))
				return
			}
		}
	}
	if err := s.cl.Materialize(q, kinds...); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.cl.Epoch()})
}

func (s *ClusterServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
