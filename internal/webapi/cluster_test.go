package webapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
)

// newClusterServer builds a 2-shard, 2-replica coordinator server over
// the same corpus newTestServer uses, so responses are directly
// comparable against the single-engine API.
func newClusterServer(t *testing.T, opts cluster.Options, allowWrites bool) (*httptest.Server, *cluster.Cluster) {
	t.Helper()
	col := corpus.GenerateIEEE(25, 202)
	if opts.Shards == 0 {
		opts.Shards = 2
	}
	if opts.Replicas == 0 {
		opts.Replicas = 2
	}
	opts.Engine.StoreDocuments = true
	cl, err := cluster.New(col, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ts := httptest.NewServer(NewCluster(cl, allowWrites))
	t.Cleanup(ts.Close)
	return ts, cl
}

// TestClusterSearchMatchesSingleEngine compares the coordinator's
// /search payload hit-for-hit against the single-engine server over the
// identical corpus, and checks the distributed accounting is attached.
func TestClusterSearchMatchesSingleEngine(t *testing.T) {
	single := newTestServer(t, false)
	clustered, _ := newClusterServer(t, cluster.Options{}, false)

	path := "/search?snippets=1&k=5&q=" + url.QueryEscape(testQuery)
	var want, got SearchResponse
	if code := getJSON(t, single, path, &want); code != http.StatusOK {
		t.Fatalf("single status = %d", code)
	}
	if code := getJSON(t, clustered, path, &got); code != http.StatusOK {
		t.Fatalf("cluster status = %d", code)
	}
	if !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Fatalf("cluster hits differ from single engine:\nsingle:  %+v\ncluster: %+v", want.Hits, got.Hits)
	}
	if got.TotalAnswers != want.TotalAnswers {
		t.Fatalf("totalAnswers = %d, single engine says %d", got.TotalAnswers, want.TotalAnswers)
	}
	if want.Cluster != nil {
		t.Fatal("single-engine response carries a cluster section")
	}
	if got.Cluster == nil {
		t.Fatal("cluster response missing the cluster section")
	}
	if got.Cluster.Shards != 2 || got.Cluster.Fetches < 2 || len(got.Cluster.PerShard) != 2 {
		t.Fatalf("cluster accounting = %+v", got.Cluster)
	}
	for i, h := range got.Hits {
		if h.Snippet == "" {
			t.Fatalf("hit %d missing snippet (cross-shard snippet routing broken)", i)
		}
	}
}

// TestClusterSearchAdmission exercises the coordinator-level front door
// over HTTP: a pinned slot sheds the next arrival with 429, and a
// queued arrival that outlives the queue timeout gets 503.
func TestClusterSearchAdmission(t *testing.T) {
	ts, cl := newClusterServer(t, cluster.Options{
		FrontDoor: &trex.FrontDoorOptions{MaxInflight: 1, QueueDepth: 0},
	}, false)
	release, _, err := cl.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/search?q=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
	release()

	ts2, cl2 := newClusterServer(t, cluster.Options{
		FrontDoor: &trex.FrontDoorOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond},
	}, false)
	release2, _, err := cl2.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	resp2, err := http.Get(ts2.URL + "/search?q=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-timeout status = %d, want 503", resp2.StatusCode)
	}
}

// TestClusterSearchDeadline checks an expired per-request deadline
// still returns a best-effort ranking marked approximate, and a
// malformed deadline is a 400.
func TestClusterSearchDeadline(t *testing.T) {
	ts, _ := newClusterServer(t, cluster.Options{}, false)
	var resp SearchResponse
	if code := getJSON(t, ts, "/search?deadline=1ns&q="+url.QueryEscape(testQuery), &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !resp.Approximate {
		t.Fatal("expired deadline did not mark the response approximate")
	}
	var e map[string]string
	if code := getJSON(t, ts, "/search?deadline=soon&q="+url.QueryEscape(testQuery), &e); code != http.StatusBadRequest {
		t.Fatalf("bad deadline status = %d", code)
	}
}

// TestClusterStatusEndpoint kills a replica and checks /cluster exposes
// the liveness flip, the epoch lag, and the recovery.
func TestClusterStatusEndpoint(t *testing.T) {
	type replicaStatus struct {
		Replica int    `json:"replica"`
		Up      bool   `json:"up"`
		Epoch   uint64 `json:"epoch"`
	}
	type shardStatus struct {
		Shard    int             `json:"shard"`
		Epoch    uint64          `json:"epoch"`
		Replicas []replicaStatus `json:"replicas"`
	}
	var status struct {
		Shards   int           `json:"shards"`
		Replicas int           `json:"replicas"`
		Epoch    uint64        `json:"epoch"`
		Topology []shardStatus `json:"topology"`
	}
	ts, cl := newClusterServer(t, cluster.Options{}, false)
	if code := getJSON(t, ts, "/cluster", &status); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if status.Shards != 2 || status.Replicas != 2 || len(status.Topology) != 2 {
		t.Fatalf("topology = %+v", status)
	}
	for _, sh := range status.Topology {
		for _, r := range sh.Replicas {
			if !r.Up {
				t.Fatalf("fresh cluster reports shard %d replica %d down", sh.Shard, r.Replica)
			}
		}
	}

	cl.Kill(1, 0)
	if code := getJSON(t, ts, "/cluster", &status); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if status.Topology[1].Replicas[0].Up {
		t.Fatal("/cluster still reports the killed replica up")
	}
	if err := cl.Revive(1, 0); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts, "/cluster", &status); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !status.Topology[1].Replicas[0].Up {
		t.Fatal("/cluster does not report the revived replica up")
	}
}

// TestClusterMetricsEndpoint checks the coordinator exposition carries
// the trex_cluster_* family and that ?shard= selects one replica
// engine's registry.
func TestClusterMetricsEndpoint(t *testing.T) {
	ts, _ := newClusterServer(t, cluster.Options{}, false)
	if _, err := http.Get(ts.URL + "/search?q=" + url.QueryEscape(testQuery)); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("coordinator metrics status = %d", code)
	}
	if !strings.Contains(body, "trex_cluster_fetches_total") {
		t.Fatalf("coordinator exposition missing trex_cluster_fetches_total:\n%s", body)
	}

	code, body = get("/metrics?shard=0&replica=1")
	if code != http.StatusOK {
		t.Fatalf("shard metrics status = %d", code)
	}
	if !strings.Contains(body, "trex_queries_total") {
		t.Fatalf("shard exposition missing trex_queries_total:\n%s", body)
	}
	if strings.Contains(body, "trex_cluster_fetches_total") {
		t.Fatal("shard exposition leaked coordinator metrics")
	}

	if code, _ := get("/metrics?shard=9"); code != http.StatusBadRequest {
		t.Fatalf("out-of-range shard status = %d, want 400", code)
	}
}

// TestClusterMaterializeGated checks the write gate and that an allowed
// materialization bumps the replicated epoch.
func TestClusterMaterializeGated(t *testing.T) {
	ts, _ := newClusterServer(t, cluster.Options{}, false)
	resp, err := http.Post(ts.URL+"/materialize?q="+url.QueryEscape(testQuery), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("gated materialize status = %d, want 403", resp.StatusCode)
	}

	tsW, cl := newClusterServer(t, cluster.Options{}, true)
	before := cl.Epoch()
	respW, err := http.Post(tsW.URL+"/materialize?q="+url.QueryEscape(testQuery), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	respW.Body.Close()
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("materialize status = %d", respW.StatusCode)
	}
	if cl.Epoch() <= before {
		t.Fatalf("epoch did not advance: %d -> %d", before, cl.Epoch())
	}
}

// TestClusterStatsEndpoint checks /stats reports the global (synced)
// collection statistics, identical to the single-engine /stats numbers.
func TestClusterStatsEndpoint(t *testing.T) {
	single := newTestServer(t, false)
	clustered, _ := newClusterServer(t, cluster.Options{}, false)
	var want, got map[string]any
	if code := getJSON(t, single, "/stats", &want); code != http.StatusOK {
		t.Fatalf("single stats status = %d", code)
	}
	if code := getJSON(t, clustered, "/stats", &got); code != http.StatusOK {
		t.Fatalf("cluster stats status = %d", code)
	}
	for _, key := range []string{"numDocs", "numElements", "avgElementLen", "summaryNodes"} {
		if got[key] != want[key] {
			t.Fatalf("stats[%q] = %v, single engine says %v", key, got[key], want[key])
		}
	}
	if got["shards"].(float64) != 2 || got["replicas"].(float64) != 2 {
		t.Fatalf("cluster stats topology = %+v", got)
	}
}
