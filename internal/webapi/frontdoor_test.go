package webapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"trex"
	"trex/internal/corpus"
)

// newFrontDoorServer builds a server whose engine runs with the given
// front-door configuration, returning the engine too so tests can pin
// its admission slots directly.
func newFrontDoorServer(t *testing.T, fd *trex.FrontDoorOptions) (*httptest.Server, *trex.Engine) {
	t.Helper()
	col := corpus.GenerateIEEE(25, 202)
	eng, err := trex.CreateMemory(col, &trex.Options{StoreDocuments: true, FrontDoor: fd})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng, false))
	t.Cleanup(ts.Close)
	return ts, eng
}

func TestSearchShedReturns429(t *testing.T) {
	ts, eng := newFrontDoorServer(t, &trex.FrontDoorOptions{MaxInflight: 1, QueueDepth: 0})
	// Pin the only execution slot so the next arrival finds the queue
	// (depth 0) full and is shed.
	release, _, err := eng.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Get(ts.URL + "/search?q=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
}

func TestSearchQueueTimeoutReturns503(t *testing.T) {
	ts, eng := newFrontDoorServer(t, &trex.FrontDoorOptions{
		MaxInflight: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond,
	})
	release, _, err := eng.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// The request queues (depth 1 admits it), then times out waiting for
	// the pinned slot.
	resp, err := http.Get(ts.URL + "/search?q=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
}

func TestSearchDeadlineParam(t *testing.T) {
	ts, _ := newFrontDoorServer(t, nil)
	// An already-expired deadline still succeeds: the strategies stop at
	// the first block boundary and the response is marked approximate.
	var resp SearchResponse
	code := getJSON(t, ts, "/search?deadline=1ns&q="+url.QueryEscape(testQuery), &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !resp.Approximate {
		t.Fatal("expired deadline did not mark the response approximate")
	}

	var e map[string]string
	if code := getJSON(t, ts, "/search?deadline=soon&q="+url.QueryEscape(testQuery), &e); code != http.StatusBadRequest {
		t.Fatalf("bad deadline status = %d", code)
	}
}

func TestSearchCachedResponse(t *testing.T) {
	ts, _ := newFrontDoorServer(t, &trex.FrontDoorOptions{CacheEntries: 64})
	path := "/search?k=5&q=" + url.QueryEscape(testQuery)
	var first, second SearchResponse
	if code := getJSON(t, ts, path, &first); code != http.StatusOK {
		t.Fatalf("first status = %d", code)
	}
	if first.Cached {
		t.Fatal("first response claims cached")
	}
	if code := getJSON(t, ts, path, &second); code != http.StatusOK {
		t.Fatalf("second status = %d", code)
	}
	if !second.Cached {
		t.Fatal("second response not served from cache")
	}
	if !reflect.DeepEqual(first.Hits, second.Hits) {
		t.Fatalf("cached hits differ:\nfirst:  %+v\nsecond: %+v", first.Hits, second.Hits)
	}
}
