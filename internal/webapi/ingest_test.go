package webapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"trex"
	"trex/internal/corpus"
)

// newJSONTestServer serves a JSON-corpus engine (writes per flag).
func newJSONTestServer(t *testing.T, allowWrites bool) (*httptest.Server, *trex.Engine) {
	t.Helper()
	col := corpus.GenerateJSON(20, 77)
	eng, err := trex.CreateMemory(col, &trex.Options{StoreDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng, allowWrites))
	t.Cleanup(ts.Close)
	return ts, eng
}

func docCount(t *testing.T, eng *trex.Engine) int {
	t.Helper()
	cs, err := eng.Store().CollectionStats()
	if err != nil {
		t.Fatal(err)
	}
	return cs.NumDocs
}

func postNDJSON(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

// TestIngestEndpoint streams NDJSON documents into a live server and
// checks they become searchable in the same process.
func TestIngestEndpoint(t *testing.T) {
	ts, eng := newJSONTestServer(t, true)
	pre := docCount(t, eng)

	body := `{"message":"zq unique ingest probe term","tags":["a1"]}` + "\n\n" +
		`{"message":"zq again","response":{"detail":"zq"}}` + "\n"
	resp, out := postNDJSON(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%v)", resp.StatusCode, out)
	}
	if got := out["docs"].(float64); got != 2 {
		t.Fatalf("docs = %v, want 2 (blank lines skipped)", got)
	}
	if got := docCount(t, eng); got != pre+2 {
		t.Fatalf("engine docs = %d, want %d", got, pre+2)
	}

	// The streamed content is queryable, through the JSONPath front end.
	q := url.QueryEscape(`$..message[?(about(@, zq))]`)
	sresp, err := http.Get(ts.URL + "/search?lang=jsonpath&k=5&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sr SearchResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK || len(sr.Hits) != 2 {
		t.Fatalf("search status=%d hits=%d, want 2 hits for the ingested term", sresp.StatusCode, len(sr.Hits))
	}
}

// TestIngestRejectsMalformedLineAtomically: a bad document rejects the
// whole batch with its line number, and nothing is committed.
func TestIngestRejectsMalformedLineAtomically(t *testing.T) {
	ts, eng := newJSONTestServer(t, true)
	pre := docCount(t, eng)
	body := `{"message":"fine"}` + "\n" + `{"message": trailing garbage` + "\n"
	resp, out := postNDJSON(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if msg := fmt.Sprint(out["error"]); !strings.Contains(msg, "line 2") {
		t.Fatalf("error does not name the failing line: %q", msg)
	}
	if got := docCount(t, eng); got != pre {
		t.Fatalf("partial batch committed: %d docs, want %d", got, pre)
	}
}

// TestIngestForbiddenOnReadOnly: without -writes the endpoint is 403.
func TestIngestForbiddenOnReadOnly(t *testing.T) {
	ts, _ := newJSONTestServer(t, false)
	resp, _ := postNDJSON(t, ts, `{"a":"b"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}
