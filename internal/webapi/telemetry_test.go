package webapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"trex"
	"trex/internal/corpus"
)

// newTelemetryServer builds a server whose engine has a tiny slow log
// with a zero-ish threshold, so every query is recorded and wraparound
// is exercisable with few requests.
func newTelemetryServer(t *testing.T, slowCap int, threshold time.Duration) *httptest.Server {
	t.Helper()
	col := corpus.GenerateIEEE(25, 202)
	eng, err := trex.CreateMemory(col, &trex.Options{
		Telemetry: &trex.TelemetryOptions{
			SlowQueryThreshold: threshold,
			SlowLogCapacity:    slowCap,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng, false))
	t.Cleanup(ts.Close)
	return ts
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, false)

	// Drive one query so the method/latency families have samples.
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?k=5&q="+url.QueryEscape(testQuery), &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every line must parse as a comment or a `name{labels} value` sample
	// with a numeric value.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
	}

	// The acceptance families: storage, retrieval/query, engine, autopilot.
	for _, want := range []string{
		"trex_storage_pages_read_total",
		"trex_storage_cache_hits_total",
		"trex_storage_shard_cache_hits_total{shard=\"0\"}",
		"trex_storage_journal_commits_total",
		"trex_queries_total{method=\"era\"}",
		"trex_query_duration_seconds_bucket",
		"trex_query_phase_seconds",
		"trex_retrieval_duration_seconds",
		"trex_engine_write_lock_wait_seconds",
		"trex_translate_cache_misses_total",
		"trex_autopilot_runs_total",
		"trex_slow_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The query we just ran must be visible in the era counter.
	if !strings.Contains(text, "trex_queries_total{method=\"era\"} 1") {
		t.Errorf("era query count not exported:\n%s", text)
	}
}

func TestMetricsDisabled(t *testing.T) {
	col := corpus.GenerateIEEE(5, 7)
	eng, err := trex.CreateMemory(col, &trex.Options{
		Telemetry: &trex.TelemetryOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng, false))
	t.Cleanup(ts.Close)

	var e map[string]string
	if code := getJSON(t, ts, "/slowlog", &e); code != http.StatusNotFound {
		t.Fatalf("slowlog status = %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics status = %d, want 404", resp.StatusCode)
	}
	// Queries still work without telemetry; the response has no trace.
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?k=3&q="+url.QueryEscape(testQuery), &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if sr.Trace != nil {
		t.Fatal("trace present with telemetry disabled")
	}
}

func TestSearchResponseTrace(t *testing.T) {
	ts := newTestServer(t, false)
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?k=5&q="+url.QueryEscape(testQuery), &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if sr.Trace == nil {
		t.Fatal("search response missing trace")
	}
	if sr.Trace.Method != sr.Method {
		t.Fatalf("trace method %q != response method %q", sr.Trace.Method, sr.Method)
	}
	var names []string
	for i := range sr.Trace.Spans {
		names = append(names, sr.Trace.Spans[i].Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"translate", "plan", "retrieve", "combine"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace spans %v missing %q", names, want)
		}
	}
}

type slowlogResponse struct {
	Threshold string `json:"threshold"`
	Capacity  int    `json:"capacity"`
	Total     uint64 `json:"total"`
	Entries   []struct {
		Query  string  `json:"query"`
		Method string  `json:"method"`
		WallMS float64 `json:"wallMs"`
	} `json:"entries"`
}

func TestSlowlogEndpoint(t *testing.T) {
	// Threshold of 1ns records every query; capacity 2 forces the ring to
	// wrap within three requests.
	ts := newTelemetryServer(t, 2, time.Nanosecond)

	var sl slowlogResponse
	if code := getJSON(t, ts, "/slowlog", &sl); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if sl.Total != 0 || len(sl.Entries) != 0 {
		t.Fatalf("fresh slowlog not empty: %+v", sl)
	}
	if sl.Capacity != 2 {
		t.Fatalf("capacity = %d", sl.Capacity)
	}

	queries := []string{
		`//article//sec[about(., ontologies)]`,
		`//article//sec[about(., case)]`,
		`//article//sec[about(., study)]`,
	}
	for _, q := range queries {
		var sr SearchResponse
		if code := getJSON(t, ts, "/search?k=3&q="+url.QueryEscape(q), &sr); code != http.StatusOK {
			t.Fatalf("search %q status = %d", q, code)
		}
	}

	if code := getJSON(t, ts, "/slowlog", &sl); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if sl.Total != 3 {
		t.Fatalf("total = %d, want 3 (every query over the 1ns budget)", sl.Total)
	}
	if len(sl.Entries) != 2 {
		t.Fatalf("entries = %d, want capacity 2 after wraparound", len(sl.Entries))
	}
	// Newest first: the last two queries survive, the first was evicted.
	if sl.Entries[0].Query != queries[2] || sl.Entries[1].Query != queries[1] {
		t.Fatalf("ring order wrong: %+v", sl.Entries)
	}

	// Runtime retuning via the threshold parameter: a huge budget stops
	// recording but keeps history.
	if code := getJSON(t, ts, "/slowlog?threshold=1h", &sl); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if sl.Threshold != "1h0m0s" {
		t.Fatalf("threshold = %q", sl.Threshold)
	}
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?k=3&q="+url.QueryEscape(queries[0]), &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if code := getJSON(t, ts, "/slowlog", &sl); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if sl.Total != 3 {
		t.Fatalf("total = %d after raising threshold, want still 3", sl.Total)
	}

	if code := getJSON(t, ts, "/slowlog?threshold=bogus", &sl); code != http.StatusBadRequest {
		t.Fatalf("bad threshold status = %d", code)
	}
}
