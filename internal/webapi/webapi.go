// Package webapi exposes a TReX engine over HTTP with a small JSON API —
// the shape of service an XML retrieval system is deployed behind.
//
// Endpoints:
//
//	GET  /search?q=<nexi>&k=10&method=auto|era|ta|nra|merge|race&snippets=1&deadline=50ms&lang=nexi|jsonpath
//	GET  /explain?q=<nexi>&lang=nexi|jsonpath
//	POST /materialize?q=<nexi>&kinds=rpl,erpl
//	POST /ingest      (streaming ingest: one document per body line)
//	GET  /stats
//	GET  /autopilot   (online self-management status: last run, plan, budget)
//	GET  /planner     (query planner status: decisions, shadow sampling, model)
//	GET  /metrics     (Prometheus text exposition of the engine's registry)
//	GET  /slowlog     (recent over-threshold queries with their traces)
//	GET  /            (a minimal HTML search page)
//
// Errors are returned as {"error": "..."} with a 4xx/5xx status.
package webapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trex"
	"trex/internal/frontdoor"
	"trex/internal/index"
	"trex/internal/jsoncorpus"
	"trex/internal/planner"
	"trex/internal/telemetry"
)

// Server wires an engine into an http.Handler.
type Server struct {
	eng *trex.Engine
	mux *http.ServeMux
	// AllowWrites enables the /materialize endpoint (a write operation);
	// off by default so a public read replica cannot be mutated.
	AllowWrites bool
}

// New creates a server over the engine.
func New(eng *trex.Engine, allowWrites bool) *Server {
	s := &Server{eng: eng, AllowWrites: allowWrites}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("POST /materialize", s.handleMaterialize)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /autopilot", s.handleAutopilot)
	mux.HandleFunc("GET /planner", s.handlePlanner)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// SearchHit is one JSON answer row.
type SearchHit struct {
	Rank    int     `json:"rank"`
	Score   float64 `json:"score"`
	Doc     uint32  `json:"doc"`
	Start   uint32  `json:"start"`
	End     uint32  `json:"end"`
	Path    string  `json:"path"`
	Snippet string  `json:"snippet,omitempty"`
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query        string  `json:"query"`
	Method       string  `json:"method"`
	K            int     `json:"k"`
	TotalAnswers int     `json:"totalAnswers"`
	ElapsedMS    float64 `json:"elapsedMs"`
	NumSIDs      int     `json:"numSids"`
	NumTerms     int     `json:"numTerms"`
	// PageReads / BytesRead are the retrieval run's storage I/O: pages
	// touched (cache hits + misses) and physical bytes fetched.
	PageReads uint64      `json:"pageReads"`
	BytesRead uint64      `json:"bytesRead"`
	Hits      []SearchHit `json:"hits"`
	// Approximate reports the query's deadline expired mid-retrieval: the
	// hits are the correctly ranked best-effort state at the stop point.
	Approximate bool `json:"approximate,omitempty"`
	// Cached reports the result was served from the engine's result cache.
	Cached bool `json:"cached,omitempty"`
	// PlannedMethod / PredictedCost / PlanCandidates expose the query
	// planner's decision when the query ran with method=auto on a
	// planner-enabled engine (absent for fixed methods, cache hits, or a
	// disabled planner).
	PlannedMethod  string          `json:"plannedMethod,omitempty"`
	PredictedCost  float64         `json:"predictedCost,omitempty"`
	PlanCandidates []PlanCandidate `json:"planCandidates,omitempty"`
	// Trace is the per-query span breakdown (absent when the engine runs
	// with telemetry disabled).
	Trace *telemetry.Trace `json:"trace,omitempty"`
	// Cluster is the scatter-gather accounting when the query was served
	// by a ClusterServer coordinator (absent on single-engine servers).
	Cluster *ClusterQueryInfo `json:"cluster,omitempty"`
}

// PlanCandidate is one retrieval method's cost estimate inside a
// planner decision, as exposed by /search and /explain.
type PlanCandidate struct {
	Method   string  `json:"method"`
	Eligible bool    `json:"eligible"`
	Prior    float64 `json:"prior"`
	Ratio    float64 `json:"ratio"`
	Cost     float64 `json:"cost"`
	Samples  uint64  `json:"samples"`
}

// planCandidates flattens a planner decision's candidate table.
func planCandidates(d *planner.Decision) []PlanCandidate {
	out := make([]PlanCandidate, 0, len(d.Candidates))
	for _, c := range d.Candidates {
		out = append(out, PlanCandidate{
			Method:   c.Method.String(),
			Eligible: c.Eligible,
			Prior:    c.Prior,
			Ratio:    c.Ratio,
			Cost:     c.Cost,
			Samples:  c.Samples,
		})
	}
	return out
}

func parseMethod(s string) (trex.Method, error) {
	switch s {
	case "", "auto":
		return trex.MethodAuto, nil
	case "era":
		return trex.MethodERA, nil
	case "ta":
		return trex.MethodTA, nil
	case "nra":
		return trex.MethodNRA, nil
	case "merge":
		return trex.MethodMerge, nil
	case "race":
		return trex.MethodRace, nil
	default:
		return trex.MethodAuto, fmt.Errorf("unknown method %q", s)
	}
}

// queryParam extracts and translates the q parameter: lang=jsonpath
// rebinds a JSONPath-flavored query onto NEXI (the natural idiom for a
// JSON corpus); lang=nexi (or absent) passes q through.
func queryParam(r *http.Request) (string, error) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return "", fmt.Errorf("missing q parameter")
	}
	switch lang := r.URL.Query().Get("lang"); lang {
	case "", "nexi":
		return q, nil
	case "jsonpath":
		return jsoncorpus.JSONPathToNEXI(q)
	default:
		return "", fmt.Errorf("unknown query language %q (want nexi or jsonpath)", lang)
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, err := queryParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k := trex.DefaultK
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
		k = v
	}
	method, err := parseMethod(r.URL.Query().Get("method"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if ds := r.URL.Query().Get("deadline"); ds != "" {
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad deadline %q", ds))
			return
		}
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, err := s.eng.QueryOptsCtx(ctx, q, trex.QueryOptions{K: k, Method: method})
	if err != nil {
		switch {
		case errors.Is(err, frontdoor.ErrShed):
			// The admission queue is full: fail fast and tell the client
			// when to come back rather than letting requests pile up.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, frontdoor.ErrQueueTimeout):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := SearchResponse{
		Query:        q,
		Method:       res.Method.String(),
		K:            k,
		TotalAnswers: res.TotalAnswers,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
		NumSIDs:      res.Translation.NumSIDs(),
		NumTerms:     res.Translation.NumTerms(),
	}
	if res.Stats != nil {
		resp.PageReads = res.Stats.PageReads
		resp.BytesRead = res.Stats.BytesRead
	}
	resp.Approximate = res.Approximate
	resp.Cached = res.Cached
	resp.Trace = res.Trace
	if res.Plan != nil {
		resp.PlannedMethod = res.Plan.Method.String()
		resp.PredictedCost = res.Plan.Cost
		resp.PlanCandidates = planCandidates(res.Plan)
	}
	wantSnippets := r.URL.Query().Get("snippets") == "1"
	terms := res.Translation.DistinctTerms()
	for i, a := range res.Answers {
		hit := SearchHit{
			Rank:  i + 1,
			Score: a.Score,
			Doc:   a.Doc,
			Start: a.Start,
			End:   a.End,
			Path:  a.Path,
		}
		if wantSnippets {
			if snip, err := s.eng.Snippet(a, terms, 160); err == nil {
				hit.Snippet = snip
			}
		}
		resp.Hits = append(resp.Hits, hit)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, err := queryParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.eng.Explain(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := map[string]any{
		"query":          ex.Query,
		"numSids":        ex.NumSIDs,
		"numTerms":       ex.NumTerms,
		"clauses":        ex.Clauses,
		"targetPaths":    ex.TargetPaths,
		"rplCovered":     ex.RPLCovered,
		"erplCovered":    ex.ERPLCovered,
		"methodAtSmallK": ex.MethodAtSmallK.String(),
		"methodAtLargeK": ex.MethodAtLargeK.String(),
		"listVolume":     ex.ListVolume,
		"listBytes":      ex.ListBytes,
	}
	if ex.Plan != nil {
		out["plannedMethod"] = ex.Plan.Method.String()
		out["predictedCost"] = ex.Plan.Cost
		out["planColdStart"] = ex.Plan.ColdStart
		out["planCandidates"] = planCandidates(ex.Plan)
	}
	if ex.PlanFeatures != nil {
		out["planFeatures"] = ex.PlanFeatures
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	if !s.AllowWrites {
		writeErr(w, http.StatusForbidden, fmt.Errorf("writes disabled on this server"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	kinds := []index.ListKind{index.KindRPL, index.KindERPL}
	if ks := r.URL.Query().Get("kinds"); ks != "" {
		kinds = nil
		for _, part := range strings.Split(ks, ",") {
			switch strings.TrimSpace(part) {
			case "rpl":
				kinds = append(kinds, index.KindRPL)
			case "erpl":
				kinds = append(kinds, index.KindERPL)
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", part))
				return
			}
		}
	}
	ms, err := s.eng.Materialize(q, kinds...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rplEntries":  ms.RPLEntries,
		"erplEntries": ms.ERPLEntries,
		"rplBytes":    ms.RPLBytes,
		"erplBytes":   ms.ERPLBytes,
	})
}

// handleIngest streams documents into the engine: the request body is
// one document per line, in the engine's corpus format (JSON objects
// for a JSON corpus, single-line XML for an XML corpus). All lines are
// staged first — a malformed document rejects the whole request with
// nothing written — then committed as one batch. Gated by AllowWrites
// like every other mutation.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.AllowWrites {
		writeErr(w, http.StatusForbidden, fmt.Errorf("writes disabled on this server"))
		return
	}
	ing := s.eng.NewIngestor()
	defer ing.Abort()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxIngestLine)
	line := 0
	for sc.Scan() {
		line++
		doc := bytes.TrimSpace(sc.Bytes())
		if len(doc) == 0 {
			continue
		}
		if err := ing.Add(doc); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("line %d: %w", line, err))
			return
		}
	}
	if err := sc.Err(); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	st, err := ing.Commit()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"docs":               st.Docs,
		"elements":           st.Elements,
		"postings":           st.Postings,
		"newSids":            st.NewSIDs,
		"droppedListEntries": st.DroppedListEntries,
	})
}

// maxIngestLine bounds one ingested document (16 MiB).
const maxIngestLine = 16 << 20

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs, err := s.eng.Store().CollectionStats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"numDocs":       cs.NumDocs,
		"numElements":   cs.NumElements,
		"avgElementLen": cs.AvgElementLen,
		"summaryNodes":  s.eng.Summary().NumNodes(),
		"pages":         s.eng.DB().PageCount(),
	})
}

// handleMetrics serves the engine's metric registry in the Prometheus
// text exposition format (version 0.0.4). 404 when the engine was
// opened with telemetry disabled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.eng.MetricsRegistry()
	if reg == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("telemetry disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

// handleSlowlog serves the slow-query ring buffer, newest first, with
// each entry's trace. The optional threshold query parameter (a Go
// duration, e.g. 100ms) retunes the budget at runtime.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	log := s.eng.SlowLog()
	if log == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("telemetry disabled"))
		return
	}
	if ts := r.URL.Query().Get("threshold"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q: %v", ts, err))
			return
		}
		log.SetThreshold(d)
	}
	entries := log.Entries()
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold": log.Threshold().String(),
		"capacity":  log.Capacity(),
		"total":     log.Total(),
		"entries":   entries,
	})
}

// handleAutopilot reports the online self-management daemon's state:
// run counters, the last applied plan (kept/dropped lists, bytes vs.
// budget), and the workload tracker's counters. enabled=false when the
// server runs without the autopilot.
func (s *Server) handleAutopilot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.AutopilotStatus())
}

// handlePlanner reports the query planner's state: per-method decision
// counts, shadow-sampling counters (samples, errors, mispredictions),
// and model calibration (observations, buckets, staleness).
// enabled=false when the engine runs with the planner disabled.
func (s *Server) handlePlanner(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.PlannerStatus())
}

const indexHTML = `<!doctype html>
<meta charset="utf-8">
<title>TReX search</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 52rem; }
 input[type=text] { width: 36rem; } pre { background: #f4f4f4; padding: .5rem; }
 .hit { margin: .75rem 0; } .path { color: #667; } .score { color: #286; }
</style>
<h1>TReX</h1>
<form onsubmit="run(event)">
 <input id="q" type="text" placeholder="//article[about(., xml)]//sec[about(., retrieval)]">
 k <input id="k" type="number" value="10" style="width:4rem">
 <select id="m"><option>auto</option><option>era</option><option>ta</option>
 <option>nra</option><option>merge</option><option>race</option></select>
 <button>search</button>
</form>
<div id="out"></div>
<script>
async function run(ev) {
  ev.preventDefault();
  const q = document.getElementById('q').value;
  const k = document.getElementById('k').value;
  const m = document.getElementById('m').value;
  const r = await fetch('/search?snippets=1&q=' + encodeURIComponent(q) + '&k=' + k + '&method=' + m);
  const data = await r.json();
  const out = document.getElementById('out');
  if (data.error) { out.textContent = data.error; return; }
  out.innerHTML = '<p>' + data.totalAnswers + ' answers via <b>' + data.method +
    '</b> in ' + data.elapsedMs + ' ms</p>' +
    (data.hits || []).map(h =>
      '<div class="hit"><span class="score">' + h.score.toFixed(3) + '</span> ' +
      '<span class="path">doc ' + h.doc + ' ' + h.path + '</span><br>' +
      (h.snippet || '')  + '</div>').join('');
}
</script>`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
