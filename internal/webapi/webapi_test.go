package webapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"trex"
	"trex/internal/corpus"
)

func newTestServer(t *testing.T, allowWrites bool) *httptest.Server {
	t.Helper()
	col := corpus.GenerateIEEE(25, 202)
	eng, err := trex.CreateMemory(col, &trex.Options{StoreDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(New(eng, allowWrites))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return resp.StatusCode
}

const testQuery = `//article//sec[about(., ontologies case study)]`

func TestSearchEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var resp SearchResponse
	code := getJSON(t, ts, "/search?snippets=1&k=5&q="+url.QueryEscape(testQuery), &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Method != "era" {
		t.Fatalf("method = %q (no lists materialized)", resp.Method)
	}
	if len(resp.Hits) == 0 || len(resp.Hits) > 5 {
		t.Fatalf("hits = %d", len(resp.Hits))
	}
	for i, h := range resp.Hits {
		if h.Rank != i+1 {
			t.Fatalf("rank[%d] = %d", i, h.Rank)
		}
		if h.Snippet == "" {
			t.Fatalf("hit %d missing snippet", i)
		}
		if !strings.HasSuffix(h.Path, "/sec") {
			t.Fatalf("hit %d path = %q", i, h.Path)
		}
	}
	if resp.NumSIDs == 0 || resp.NumTerms != 3 {
		t.Fatalf("translation = %d sids, %d terms", resp.NumSIDs, resp.NumTerms)
	}
}

func TestSearchErrors(t *testing.T) {
	ts := newTestServer(t, false)
	var e map[string]string
	if code := getJSON(t, ts, "/search", &e); code != http.StatusBadRequest {
		t.Fatalf("missing q status = %d", code)
	}
	if code := getJSON(t, ts, "/search?q="+url.QueryEscape("not nexi"), &e); code != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", code)
	}
	if e["error"] == "" {
		t.Fatal("no error message")
	}
	if code := getJSON(t, ts, "/search?k=-1&q="+url.QueryEscape(testQuery), &e); code != http.StatusBadRequest {
		t.Fatalf("bad k status = %d", code)
	}
	if code := getJSON(t, ts, "/search?method=warp&q="+url.QueryEscape(testQuery), &e); code != http.StatusBadRequest {
		t.Fatalf("bad method status = %d", code)
	}
}

func TestMaterializeEndpointAndMethodSwitch(t *testing.T) {
	ts := newTestServer(t, true)
	resp, err := http.Post(ts.URL+"/materialize?q="+url.QueryEscape(testQuery), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("materialize status = %d: %v", resp.StatusCode, m)
	}
	if m["rplEntries"].(float64) <= 0 {
		t.Fatalf("rplEntries = %v", m["rplEntries"])
	}
	// Auto now picks TA for small k.
	var sr SearchResponse
	getJSON(t, ts, "/search?k=5&q="+url.QueryEscape(testQuery), &sr)
	if sr.Method != "ta" {
		t.Fatalf("method after materialize = %q", sr.Method)
	}
}

func TestMaterializeForbiddenOnReadOnly(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Post(ts.URL+"/materialize?q="+url.QueryEscape(testQuery), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var ex map[string]any
	code := getJSON(t, ts, "/explain?q="+url.QueryEscape(testQuery), &ex)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ex["numTerms"].(float64) != 3 {
		t.Fatalf("numTerms = %v", ex["numTerms"])
	}
	if ex["methodAtSmallK"].(string) != "era" {
		t.Fatalf("methodAtSmallK = %v", ex["methodAtSmallK"])
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var st map[string]any
	code := getJSON(t, ts, "/stats", &st)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st["numDocs"].(float64) != 25 {
		t.Fatalf("numDocs = %v", st["numDocs"])
	}
	if st["summaryNodes"].(float64) <= 0 {
		t.Fatalf("summaryNodes = %v", st["summaryNodes"])
	}
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	// Unknown paths 404.
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestPlannerEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var st map[string]any
	if code := getJSON(t, ts, "/planner", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !st["enabled"].(bool) {
		t.Fatal("planner reported disabled on a default engine")
	}
	if st["shadowFraction"].(float64) != trex.DefaultShadowFraction {
		t.Fatalf("shadowFraction = %v", st["shadowFraction"])
	}
	if _, ok := st["decisions"].(map[string]any); !ok {
		t.Fatalf("decisions = %T", st["decisions"])
	}

	// An auto query bumps the decision counter for the routed method and
	// calibrates the model with its observed cost.
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?q="+url.QueryEscape(testQuery), &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if code := getJSON(t, ts, "/planner", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	dec := st["decisions"].(map[string]any)
	var total float64
	for _, v := range dec {
		total += v.(float64)
	}
	if total != 1 {
		t.Fatalf("decisions after one auto query = %v", dec)
	}
	if st["observations"].(float64) < 1 {
		t.Fatalf("observations = %v", st["observations"])
	}

	// A planner-disabled engine still answers, flagged disabled.
	col := corpus.GenerateIEEE(5, 404)
	eng, err := trex.CreateMemory(col, &trex.Options{
		Planner: &trex.PlannerOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts2 := httptest.NewServer(New(eng, false))
	t.Cleanup(ts2.Close)
	var off map[string]any
	if code := getJSON(t, ts2, "/planner", &off); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if off["enabled"].(bool) {
		t.Fatal("planner reported enabled on a disabled engine")
	}
}

func TestSearchPlannerFields(t *testing.T) {
	ts := newTestServer(t, false)
	var sr SearchResponse
	if code := getJSON(t, ts, "/search?q="+url.QueryEscape(testQuery), &sr); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if sr.PlannedMethod != sr.Method {
		t.Fatalf("plannedMethod = %q, method = %q", sr.PlannedMethod, sr.Method)
	}
	if sr.PredictedCost <= 0 {
		t.Fatalf("predictedCost = %v", sr.PredictedCost)
	}
	if len(sr.PlanCandidates) != 4 {
		t.Fatalf("planCandidates = %d, want 4", len(sr.PlanCandidates))
	}
	for _, c := range sr.PlanCandidates {
		if c.Method == "" {
			t.Fatalf("candidate missing method: %+v", c)
		}
	}

	// Fixed methods carry no plan.
	var fixed SearchResponse
	if code := getJSON(t, ts, "/search?method=era&q="+url.QueryEscape(testQuery), &fixed); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if fixed.PlannedMethod != "" || fixed.PlanCandidates != nil {
		t.Fatalf("fixed-method response carries plan: %q %v", fixed.PlannedMethod, fixed.PlanCandidates)
	}
}

func TestExplainPlannerFields(t *testing.T) {
	ts := newTestServer(t, false)
	var ex map[string]any
	if code := getJSON(t, ts, "/explain?q="+url.QueryEscape(testQuery), &ex); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ex["plannedMethod"].(string) != "era" {
		t.Fatalf("plannedMethod = %v (nothing materialized)", ex["plannedMethod"])
	}
	if ex["planColdStart"].(bool) != true {
		t.Fatal("fresh engine not flagged cold-start")
	}
	cands, ok := ex["planCandidates"].([]any)
	if !ok || len(cands) != 4 {
		t.Fatalf("planCandidates = %v", ex["planCandidates"])
	}
	feats, ok := ex["planFeatures"].(map[string]any)
	if !ok {
		t.Fatalf("planFeatures = %T", ex["planFeatures"])
	}
	if feats["NumTerms"].(float64) != 3 {
		t.Fatalf("planFeatures.NumTerms = %v", feats["NumTerms"])
	}
}

func TestAutopilotEndpoint(t *testing.T) {
	// Without the daemon the endpoint still answers, flagged disabled.
	ts := newTestServer(t, false)
	var off map[string]any
	if code := getJSON(t, ts, "/autopilot", &off); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if off["enabled"].(bool) {
		t.Fatal("autopilot reported enabled on a plain server")
	}

	// With Options.Autopilot the status reflects live tracker counters.
	col := corpus.GenerateIEEE(10, 303)
	eng, err := trex.CreateMemory(col, &trex.Options{
		StoreDocuments: true,
		Autopilot:      &trex.AutopilotOptions{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts2 := httptest.NewServer(New(eng, false))
	t.Cleanup(ts2.Close)
	var on map[string]any
	if code := getJSON(t, ts2, "/search?q="+url.QueryEscape(testQuery), &on); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if code := getJSON(t, ts2, "/autopilot", &on); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !on["enabled"].(bool) {
		t.Fatal("autopilot reported disabled")
	}
	if on["totalObserved"].(float64) != 1 {
		t.Fatalf("totalObserved = %v, want 1 (the /search call)", on["totalObserved"])
	}
}
