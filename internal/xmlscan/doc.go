// Package xmlscan is a byte-position-aware XML scanner and tree builder.
//
// TReX identifies every element by the byte position where it ends inside
// its document (docid, endpos) and locates term occurrences by byte offset
// (docid, offset) — the same containment test ERA performs in the paper
// ("start(e) < pos < end(e)"). The standard library's encoding/xml does
// not expose stable byte offsets for both start and end tags, so this
// package implements a small scanner that does.
//
// The scanner handles the XML subset the INEX-style collections use:
// elements with attributes, character data, entity references, CDATA
// sections, comments, processing instructions and DOCTYPE declarations.
// It is not a validating parser; malformed input yields an error rather
// than a guess.
package xmlscan
