package xmlscan

import (
	"math/rand"
	"strings"
	"testing"
)

// genDoc produces a random well-formed XML document and the expected
// number of elements.
func genDoc(rng *rand.Rand, maxDepth int) (string, int) {
	var sb strings.Builder
	count := 0
	tags := []string{"a", "bb", "ccc", "dd", "e"}
	texts := []string{"", "hello world", "x", "  spaced out  ", "123 456", "&amp; entity"}
	var emit func(depth int)
	emit = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		count++
		if rng.Intn(6) == 0 {
			sb.WriteString("<" + tag + "/>")
			return
		}
		sb.WriteString("<" + tag)
		if rng.Intn(3) == 0 {
			sb.WriteString(` attr="` + texts[rng.Intn(len(texts))] + `"`)
		}
		sb.WriteString(">")
		nChildren := rng.Intn(3)
		if depth >= maxDepth {
			nChildren = 0
		}
		sb.WriteString(texts[rng.Intn(len(texts))])
		for i := 0; i < nChildren; i++ {
			emit(depth + 1)
			sb.WriteString(texts[rng.Intn(len(texts))])
		}
		if rng.Intn(5) == 0 {
			sb.WriteString("<!-- comment -->")
		}
		sb.WriteString("</" + tag + ">")
	}
	emit(0)
	return sb.String(), count
}

// TestQuickGeneratedDocsParse property: generated well-formed documents
// parse, report the exact element count, and satisfy the span invariants
// (root spans the document, children strictly nested, spans map back to
// '<'/'>' boundaries).
func TestQuickGeneratedDocsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		doc, wantCount := genDoc(rng, 4)
		root, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("trial %d: %v\ndoc: %s", trial, err, doc)
		}
		if got := root.Count(); got != wantCount {
			t.Fatalf("trial %d: Count = %d, want %d\ndoc: %s", trial, got, wantCount, doc)
		}
		if root.Start != 0 || root.End != len(doc) {
			t.Fatalf("trial %d: root span [%d,%d), doc len %d", trial, root.Start, root.End, len(doc))
		}
		root.Walk(func(n *Node) bool {
			if doc[n.Start] != '<' {
				t.Fatalf("trial %d: element %q start %d is %q", trial, n.Tag, n.Start, doc[n.Start])
			}
			if doc[n.End-1] != '>' {
				t.Fatalf("trial %d: element %q end %d-1 is %q", trial, n.Tag, n.End, doc[n.End-1])
			}
			for i, c := range n.Children {
				if c.Start <= n.Start || c.End >= n.End {
					t.Fatalf("trial %d: child %d of %q not strictly nested", trial, i, n.Tag)
				}
				if i > 0 && c.Start < n.Children[i-1].End {
					t.Fatalf("trial %d: siblings overlap under %q", trial, n.Tag)
				}
			}
			return true
		})
		// Term offsets always point into text, never into markup.
		terms, err := DocTerms([]byte(doc))
		if err != nil {
			t.Fatalf("trial %d: DocTerms: %v", trial, err)
		}
		for _, tm := range terms {
			got := strings.ToLower(doc[tm.Offset : tm.Offset+len(tm.Text)])
			if got != tm.Text {
				t.Fatalf("trial %d: term %q offset %d points at %q", trial, tm.Text, tm.Offset, got)
			}
		}
	}
}

// TestQuickMutatedDocsNeverPanic property: randomly corrupting documents
// yields errors, not panics, and never false element counts.
func TestQuickMutatedDocsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		doc, _ := genDoc(rng, 3)
		b := []byte(doc)
		// Apply 1-3 random mutations.
		for m := 1 + rng.Intn(3); m > 0 && len(b) > 0; m-- {
			switch rng.Intn(3) {
			case 0: // delete a byte
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 1: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			default: // duplicate a byte
				i := rng.Intn(len(b))
				b = append(b[:i+1], b[i:]...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Parse panicked: %v\ndoc: %q", trial, r, b)
				}
			}()
			_, _ = Parse(b)
		}()
	}
}
