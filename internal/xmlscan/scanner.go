package xmlscan

import (
	"fmt"
)

// Kind identifies the type of a scanner event.
type Kind int

const (
	// KindStart is an element start tag. Offset is the position of '<';
	// the element's start position in the TReX sense.
	KindStart Kind = iota
	// KindEnd is an element end tag (or the implicit end of a self-closing
	// tag). Offset is the position one past the closing '>'; the element's
	// end position in the TReX sense.
	KindEnd
	// KindText is character data between tags. Offset is the position of
	// the first byte of the run.
	KindText
)

// Attr is one attribute of a start tag, captured only when the scanner's
// CaptureAttrs flag is set.
type Attr struct {
	Name  string
	Value string
}

// Event is one scanner step.
type Event struct {
	Kind Kind
	// Name is the tag name for KindStart/KindEnd.
	Name string
	// Text is the raw character data for KindText (entities not expanded;
	// term tokenization treats them as separators).
	Text []byte
	// Offset is the byte position of the event within the document.
	Offset int
	// Attrs holds the start tag's attributes when CaptureAttrs is on.
	Attrs []Attr
}

// Scanner walks an XML document, producing events with byte offsets.
type Scanner struct {
	data []byte
	pos  int
	// stack of open element names for well-formedness checking
	stack []string
	ev    Event
	err   error
	done  bool
	// pendingEnd holds the synthetic end event of a self-closing tag,
	// emitted on the Next call after its start event.
	pendingEnd *Event
	// CaptureAttrs makes start events carry their attributes. Off by
	// default: the indexing paths don't need them, and skipping the
	// allocations keeps document scans lean.
	CaptureAttrs bool
}

// NewScanner returns a scanner over data. The slice is not copied.
func NewScanner(data []byte) *Scanner {
	return &Scanner{data: data}
}

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// Event returns the current event. Valid after Next reports true.
func (s *Scanner) Event() Event { return s.ev }

// Depth returns the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.stack) }

func (s *Scanner) fail(format string, args ...any) bool {
	s.err = fmt.Errorf("xmlscan: at byte %d: %s", s.pos, fmt.Sprintf(format, args...))
	s.done = true
	return false
}

// Next advances to the next event. It reports false at end of input or on
// error (check Err).
func (s *Scanner) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	if s.pendingEnd != nil {
		s.ev = *s.pendingEnd
		s.pendingEnd = nil
		return true
	}
	for s.pos < len(s.data) {
		if s.data[s.pos] != '<' {
			return s.scanText()
		}
		if s.pos+1 >= len(s.data) {
			return s.fail("unexpected EOF after '<'")
		}
		switch s.data[s.pos+1] {
		case '/':
			return s.scanEndTag()
		case '!':
			produced, ok := s.scanBangConstruct()
			if !ok {
				return false
			}
			if produced {
				return true
			}
		case '?':
			if !s.skipPI() {
				return false
			}
		default:
			return s.scanStartTag()
		}
	}
	if len(s.stack) > 0 {
		return s.fail("unexpected EOF: %d elements still open (innermost %q)",
			len(s.stack), s.stack[len(s.stack)-1])
	}
	s.done = true
	return false
}

func (s *Scanner) scanText() bool {
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] != '<' {
		s.pos++
	}
	s.ev = Event{Kind: KindText, Text: s.data[start:s.pos], Offset: start}
	return true
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// scanName parses a tag/attribute name starting at s.pos.
func (s *Scanner) scanName() (string, bool) {
	start := s.pos
	if s.pos >= len(s.data) || !isNameStart(s.data[s.pos]) {
		return "", s.fail("expected name")
	}
	s.pos++
	for s.pos < len(s.data) && isNameChar(s.data[s.pos]) {
		s.pos++
	}
	return string(s.data[start:s.pos]), true
}

func (s *Scanner) skipSpace() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *Scanner) scanStartTag() bool {
	tagStart := s.pos
	s.pos++ // '<'
	name, ok := s.scanName()
	if !ok {
		return false
	}
	var attrs []Attr
	for {
		s.skipSpace()
		if s.pos >= len(s.data) {
			return s.fail("unexpected EOF in tag %q", name)
		}
		switch s.data[s.pos] {
		case '>':
			s.pos++
			s.stack = append(s.stack, name)
			s.ev = Event{Kind: KindStart, Name: name, Offset: tagStart, Attrs: attrs}
			return true
		case '/':
			if s.pos+1 >= len(s.data) || s.data[s.pos+1] != '>' {
				return s.fail("expected '/>' in tag %q", name)
			}
			s.pos += 2
			// Self-closing: emit Start now, queue End via a tiny state
			// machine — we emit Start and remember to emit End next call.
			s.ev = Event{Kind: KindStart, Name: name, Offset: tagStart, Attrs: attrs}
			s.pendingEnd = &Event{Kind: KindEnd, Name: name, Offset: s.pos}
			return true
		default:
			attrName, ok := s.scanName()
			if !ok {
				return false
			}
			s.skipSpace()
			if s.pos >= len(s.data) || s.data[s.pos] != '=' {
				return s.fail("expected '=' after attribute name in tag %q", name)
			}
			s.pos++
			s.skipSpace()
			if s.pos >= len(s.data) || (s.data[s.pos] != '"' && s.data[s.pos] != '\'') {
				return s.fail("expected quoted attribute value in tag %q", name)
			}
			quote := s.data[s.pos]
			s.pos++
			valStart := s.pos
			for s.pos < len(s.data) && s.data[s.pos] != quote {
				s.pos++
			}
			if s.pos >= len(s.data) {
				return s.fail("unterminated attribute value in tag %q", name)
			}
			if s.CaptureAttrs {
				attrs = append(attrs, Attr{
					Name:  attrName,
					Value: string(s.data[valStart:s.pos]),
				})
			}
			s.pos++ // closing quote
		}
	}
}

func (s *Scanner) scanEndTag() bool {
	s.pos += 2 // '</'
	name, ok := s.scanName()
	if !ok {
		return false
	}
	s.skipSpace()
	if s.pos >= len(s.data) || s.data[s.pos] != '>' {
		return s.fail("expected '>' in end tag %q", name)
	}
	s.pos++
	if len(s.stack) == 0 {
		return s.fail("end tag %q with no open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return s.fail("end tag %q does not match open element %q", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	s.ev = Event{Kind: KindEnd, Name: name, Offset: s.pos}
	return true
}

// scanBangConstruct handles comments, CDATA and DOCTYPE. It returns
// (produced, ok): produced is true when an event was emitted (CDATA text),
// ok is false on error.
func (s *Scanner) scanBangConstruct() (bool, bool) {
	if hasPrefixAt(s.data, s.pos, "<!--") {
		end := indexFrom(s.data, s.pos+4, "-->")
		if end < 0 {
			return false, s.fail("unterminated comment")
		}
		s.pos = end + 3
		return false, true
	}
	if hasPrefixAt(s.data, s.pos, "<![CDATA[") {
		start := s.pos + 9
		end := indexFrom(s.data, start, "]]>")
		if end < 0 {
			return false, s.fail("unterminated CDATA section")
		}
		s.ev = Event{Kind: KindText, Text: s.data[start:end], Offset: start}
		s.pos = end + 3
		return true, true
	}
	if hasPrefixAt(s.data, s.pos, "<!DOCTYPE") {
		// Skip to matching '>' (internal subsets with brackets supported).
		depth := 0
		i := s.pos
		for i < len(s.data) {
			switch s.data[i] {
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth == 0 {
					s.pos = i + 1
					return false, true
				}
			}
			i++
		}
		return false, s.fail("unterminated DOCTYPE")
	}
	return false, s.fail("unsupported '<!' construct")
}

func (s *Scanner) skipPI() bool {
	end := indexFrom(s.data, s.pos+2, "?>")
	if end < 0 {
		return s.fail("unterminated processing instruction")
	}
	s.pos = end + 2
	return true
}

func hasPrefixAt(data []byte, pos int, prefix string) bool {
	if pos+len(prefix) > len(data) {
		return false
	}
	return string(data[pos:pos+len(prefix)]) == prefix
}

func indexFrom(data []byte, from int, sub string) int {
	for i := from; i+len(sub) <= len(data); i++ {
		if string(data[i:i+len(sub)]) == sub {
			return i
		}
	}
	return -1
}
