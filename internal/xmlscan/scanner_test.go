package xmlscan

import (
	"strings"
	"testing"
)

// collect runs the scanner to completion, failing the test on scan error.
func collect(t *testing.T, doc string) []Event {
	t.Helper()
	s := NewScanner([]byte(doc))
	var evs []Event
	for s.Next() {
		evs = append(evs, s.Event())
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan error: %v", err)
	}
	return evs
}

func TestScannerSimpleDoc(t *testing.T) {
	doc := `<a><b>hello</b></a>`
	evs := collect(t, doc)
	want := []struct {
		kind Kind
		name string
		text string
	}{
		{KindStart, "a", ""},
		{KindStart, "b", ""},
		{KindText, "", "hello"},
		{KindEnd, "b", ""},
		{KindEnd, "a", ""},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Name != w.name || string(evs[i].Text) != w.text {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
}

func TestScannerOffsets(t *testing.T) {
	doc := `<a><b>xy</b></a>`
	//      0123456789...
	evs := collect(t, doc)
	// <a> starts at 0, <b> at 3, text at 6, </b> ends at 12, </a> ends at 16.
	if evs[0].Offset != 0 {
		t.Errorf("a start offset = %d, want 0", evs[0].Offset)
	}
	if evs[1].Offset != 3 {
		t.Errorf("b start offset = %d, want 3", evs[1].Offset)
	}
	if evs[2].Offset != 6 {
		t.Errorf("text offset = %d, want 6", evs[2].Offset)
	}
	if evs[3].Offset != 12 {
		t.Errorf("b end offset = %d, want 12", evs[3].Offset)
	}
	if evs[4].Offset != 16 {
		t.Errorf("a end offset = %d, want 16", evs[4].Offset)
	}
}

func TestScannerAttributes(t *testing.T) {
	doc := `<article id="7" lang='en'><sec n="1">t</sec></article>`
	evs := collect(t, doc)
	if evs[0].Name != "article" || evs[1].Name != "sec" {
		t.Fatalf("names = %q, %q", evs[0].Name, evs[1].Name)
	}
	if string(evs[2].Text) != "t" {
		t.Fatalf("text = %q", evs[2].Text)
	}
}

func TestScannerSelfClosing(t *testing.T) {
	doc := `<a><img/><b x="1"/></a>`
	evs := collect(t, doc)
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Name+":"+map[Kind]string{KindStart: "s", KindEnd: "e", KindText: "t"}[e.Kind])
	}
	got := strings.Join(kinds, " ")
	want := "a:s img:s img:e b:s b:e a:e"
	if got != want {
		t.Fatalf("events = %q, want %q", got, want)
	}
	// End offset of <img/> is one past '>' (position 9).
	if evs[2].Offset != 9 {
		t.Errorf("img end offset = %d, want 9", evs[2].Offset)
	}
}

func TestScannerCommentsPIsDoctype(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE article [<!ENTITY x "y">]><!-- c --><a>ok<!-- mid --></a>`
	evs := collect(t, doc)
	if len(evs) != 3 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	if string(evs[1].Text) != "ok" {
		t.Fatalf("text = %q", evs[1].Text)
	}
}

func TestScannerCDATA(t *testing.T) {
	doc := `<a><![CDATA[raw <stuff> here]]></a>`
	evs := collect(t, doc)
	if len(evs) != 3 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	if evs[1].Kind != KindText || string(evs[1].Text) != "raw <stuff> here" {
		t.Fatalf("CDATA event = %+v", evs[1])
	}
}

func TestScannerErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"mismatched", `<a><b></a></b>`},
		{"unclosed", `<a><b>`},
		{"stray end", `</a>`},
		{"eof in tag", `<a`},
		{"bad attr", `<a b></a>`},
		{"unterminated comment", `<a><!-- oops</a>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScanner([]byte(tc.doc))
			for s.Next() {
			}
			if s.Err() == nil {
				t.Fatalf("no error for %q", tc.doc)
			}
		})
	}
}

func TestScannerNestedDepth(t *testing.T) {
	doc := `<a><b><c><d>x</d></c></b></a>`
	s := NewScanner([]byte(doc))
	maxDepth := 0
	for s.Next() {
		if d := s.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if maxDepth != 4 {
		t.Fatalf("max depth = %d, want 4", maxDepth)
	}
}

func TestParseTree(t *testing.T) {
	doc := `<article><fm><atl>Title</atl></fm><bdy><sec><p>one</p><p>two</p></sec></bdy></article>`
	root, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if root.Tag != "article" {
		t.Fatalf("root = %q", root.Tag)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	if root.Count() != 7 {
		t.Fatalf("Count = %d, want 7", root.Count())
	}
	sec := root.Children[1].Children[0]
	if sec.Tag != "sec" || len(sec.Children) != 2 {
		t.Fatalf("sec = %+v", sec)
	}
	path := sec.Children[1].Path()
	want := "article/bdy/sec/p"
	if strings.Join(path, "/") != want {
		t.Fatalf("path = %v, want %s", path, want)
	}
	// Positions: root spans the whole document.
	if root.Start != 0 || root.End != len(doc) {
		t.Fatalf("root span = [%d,%d), want [0,%d)", root.Start, root.End, len(doc))
	}
	if root.Length() != len(doc) {
		t.Fatalf("root length = %d", root.Length())
	}
	// Every child is strictly inside its parent.
	root.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			if c.Start <= n.Start || c.End >= n.End {
				t.Errorf("child %q [%d,%d) not inside parent %q [%d,%d)",
					c.Tag, c.Start, c.End, n.Tag, n.Start, n.End)
			}
		}
		return true
	})
}

func TestParseMultipleRootsFails(t *testing.T) {
	if _, err := Parse([]byte(`<a></a><b></b>`)); err == nil {
		t.Fatal("expected error for multiple roots")
	}
}

func TestParseEmptyFails(t *testing.T) {
	if _, err := Parse([]byte(``)); err == nil {
		t.Fatal("expected error for empty document")
	}
	if _, err := Parse([]byte(`   <!-- only a comment -->`)); err == nil {
		t.Fatal("expected error for commentless document")
	}
}

func TestWalkPrune(t *testing.T) {
	doc := `<a><b><c>x</c></b><d>y</d></a>`
	root, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	root.Walk(func(n *Node) bool {
		visited = append(visited, n.Tag)
		return n.Tag != "b" // prune under b
	})
	got := strings.Join(visited, " ")
	if got != "a b d" {
		t.Fatalf("visited = %q, want %q", got, "a b d")
	}
}

func TestCaptureAttrs(t *testing.T) {
	doc := `<topic topic_id="202" type='CAS'><title x="1"/></topic>`
	s := NewScanner([]byte(doc))
	s.CaptureAttrs = true
	var got [][]Attr
	for s.Next() {
		if s.Event().Kind == KindStart {
			got = append(got, s.Event().Attrs)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("start events = %d", len(got))
	}
	if len(got[0]) != 2 || got[0][0] != (Attr{"topic_id", "202"}) || got[0][1] != (Attr{"type", "CAS"}) {
		t.Fatalf("attrs[0] = %+v", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != (Attr{"x", "1"}) {
		t.Fatalf("attrs[1] = %+v", got[1])
	}
	// Off by default: no attrs captured.
	s2 := NewScanner([]byte(doc))
	for s2.Next() {
		if s2.Event().Kind == KindStart && s2.Event().Attrs != nil {
			t.Fatal("attrs captured without opt-in")
		}
	}
}
