package xmlscan

// Term is one word occurrence inside a document.
type Term struct {
	// Text is the lowercased token.
	Text string
	// Offset is the byte position of the token's first character in the
	// document — the "offset" field of the PostingLists table.
	Offset int
}

// minTermLen drops one-character noise tokens.
const minTermLen = 2

// isTermByte reports whether c participates in a token. Tokens are ASCII
// alphanumeric runs; everything else (punctuation, entities, markup,
// non-ASCII bytes) separates tokens. INEX-era engines used comparable
// ASCII folding.
func isTermByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// Tokenize extracts terms from a text run. base is the byte offset of
// text[0] within the document, so emitted offsets are document-global.
// The callback is invoked once per token in order; it must copy Text if it
// retains it (it is freshly allocated, so retention is safe, but offsets
// into text are not).
func Tokenize(text []byte, base int, fn func(Term)) {
	i := 0
	for i < len(text) {
		if !isTermByte(text[i]) {
			i++
			continue
		}
		start := i
		for i < len(text) && isTermByte(text[i]) {
			i++
		}
		if i-start < minTermLen {
			continue
		}
		buf := make([]byte, i-start)
		for j := start; j < i; j++ {
			buf[j-start] = lowerByte(text[j])
		}
		fn(Term{Text: string(buf), Offset: base + start})
	}
}

// TokenizeString is Tokenize over a query string; offsets are relative to
// the string and usually ignored by callers.
func TokenizeString(s string) []string {
	var out []string
	Tokenize([]byte(s), 0, func(t Term) { out = append(out, t.Text) })
	return out
}

// DocTerms scans a whole document and returns every term occurrence with
// its document-global offset, in position order.
func DocTerms(data []byte) ([]Term, error) {
	s := NewScanner(data)
	var terms []Term
	for s.Next() {
		ev := s.Event()
		if ev.Kind != KindText {
			continue
		}
		Tokenize(ev.Text, ev.Offset, func(t Term) { terms = append(terms, t) })
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return terms, nil
}
