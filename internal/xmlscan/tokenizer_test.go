package xmlscan

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	var got []Term
	Tokenize([]byte("Hello, XML world!"), 0, func(tm Term) { got = append(got, tm) })
	want := []Term{
		{Text: "hello", Offset: 0},
		{Text: "xml", Offset: 7},
		{Text: "world", Offset: 11},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %+v, want %+v", got, want)
	}
}

func TestTokenizeBaseOffset(t *testing.T) {
	var got []Term
	Tokenize([]byte("ab cd"), 100, func(tm Term) { got = append(got, tm) })
	if got[0].Offset != 100 || got[1].Offset != 103 {
		t.Fatalf("offsets = %d, %d; want 100, 103", got[0].Offset, got[1].Offset)
	}
}

func TestTokenizeDropsShortTokens(t *testing.T) {
	got := TokenizeString("a b cd e fg")
	want := []string{"cd", "fg"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeString = %v, want %v", got, want)
	}
}

func TestTokenizeNumbersAndMixed(t *testing.T) {
	got := TokenizeString("IEEE 2005 top-k  x86_64")
	// '-' and '_' split tokens; single chars dropped ("k").
	want := []string{"ieee", "2005", "top", "x86", "64"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeString = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := TokenizeString(""); got != nil {
		t.Fatalf("TokenizeString(\"\") = %v, want nil", got)
	}
	if got := TokenizeString("!!! ... ???"); got != nil {
		t.Fatalf("punctuation only = %v, want nil", got)
	}
}

func TestDocTerms(t *testing.T) {
	doc := `<a>alpha <b>beta gamma</b> delta</a>`
	terms, err := DocTerms([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tm := range terms {
		texts = append(texts, tm.Text)
	}
	want := []string{"alpha", "beta", "gamma", "delta"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("DocTerms = %v, want %v", texts, want)
	}
	// Offsets must point at the exact byte of each token.
	for _, tm := range terms {
		end := tm.Offset + len(tm.Text)
		if got := string(doc[tm.Offset:end]); got != tm.Text {
			t.Errorf("term %q offset %d points at %q", tm.Text, tm.Offset, got)
		}
	}
	// Offsets strictly increase.
	for i := 1; i < len(terms); i++ {
		if terms[i].Offset <= terms[i-1].Offset {
			t.Errorf("offset order violated: %d after %d", terms[i].Offset, terms[i-1].Offset)
		}
	}
}

func TestDocTermsErrorPropagates(t *testing.T) {
	if _, err := DocTerms([]byte(`<a>oops`)); err == nil {
		t.Fatal("expected error")
	}
}

// Property: every token Tokenize emits is lowercase alphanumeric, at least
// minTermLen long, and its offset points at a matching region of the input
// (case-insensitively).
func TestQuickTokenizeInvariants(t *testing.T) {
	f := func(text []byte) bool {
		ok := true
		Tokenize(text, 0, func(tm Term) {
			if len(tm.Text) < minTermLen {
				ok = false
				return
			}
			for i := 0; i < len(tm.Text); i++ {
				c := tm.Text[i]
				if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9') {
					ok = false
					return
				}
			}
			if tm.Offset < 0 || tm.Offset+len(tm.Text) > len(text) {
				ok = false
				return
			}
			for i := 0; i < len(tm.Text); i++ {
				if lowerByte(text[tm.Offset+i]) != tm.Text[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
