package xmlscan

import "fmt"

// Node is one element in a parsed document tree.
type Node struct {
	// Tag is the element name.
	Tag string
	// Start is the byte offset of the '<' of the start tag.
	Start int
	// End is the byte offset one past the '>' of the end tag: the TReX
	// element identity within a document.
	End int
	// Parent is nil at the root.
	Parent *Node
	// Children in document order.
	Children []*Node
}

// Length is the element's extent in bytes (the paper's "length" column of
// the Elements table).
func (n *Node) Length() int { return n.End - n.Start }

// Path returns the label path from the document root to this node,
// root first.
func (n *Node) Path() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Tag)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Walk visits n and all descendants in document order. Returning false
// from fn prunes the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of elements in the subtree, including n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Parse builds the element tree of a document. Text runs are not stored in
// the tree (term offsets come from the scanner directly); the tree serves
// summary construction and extent computation.
func Parse(data []byte) (*Node, error) {
	s := NewScanner(data)
	var root *Node
	var cur *Node
	for s.Next() {
		ev := s.Event()
		switch ev.Kind {
		case KindStart:
			node := &Node{Tag: ev.Name, Start: ev.Offset, Parent: cur}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("xmlscan: multiple root elements (%q then %q)", root.Tag, ev.Name)
				}
				root = node
			} else {
				cur.Children = append(cur.Children, node)
			}
			cur = node
		case KindEnd:
			if cur == nil {
				return nil, fmt.Errorf("xmlscan: unbalanced end tag %q", ev.Name)
			}
			cur.End = ev.Offset
			cur = cur.Parent
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("xmlscan: document has no root element")
	}
	return root, nil
}
