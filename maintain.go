package trex

import (
	"fmt"
	"time"

	"trex/internal/corpus"
	"trex/internal/index"
)

// AddStats reports what AddDocuments changed.
type AddStats struct {
	// Docs and Elements added; Postings is new term occurrences.
	Docs     int
	Elements int
	Postings int64
	// NewSIDs counts summary nodes created for previously unseen paths.
	NewSIDs int
	// DroppedListEntries counts stale RPL/ERPL entries reclaimed (all
	// materialized lists are invalidated by a collection change, because
	// stored scores depend on collection statistics).
	DroppedListEntries int
}

// AddDocuments appends documents to the collection and updates the base
// indexes incrementally: the structural summary grows for unseen paths,
// element rows and posting fragments are inserted, and term/collection
// statistics are merged. Document ids must continue the existing dense
// sequence (the collection is append-only). Documents are interpreted
// in the engine's corpus format (XML or JSON).
//
// The batch is STAGED first — parsed and tokenized outside the engine
// write lock, so queries keep serving through the expensive part — and
// only then applied under the lock and committed with a single storage
// flush. A batch that fails to stage (malformed input, out-of-sequence
// ids) is rolled back for free: nothing was written. Errors after the
// apply phase begins say which phase failed; queries stay correct
// throughout because every strategy falls back to the base tables, and
// the crash-recovery journal keeps the on-disk image at exactly the
// pre-batch or post-batch state (see internal/faultinject).
//
// All materialized RPL/ERPL lists are dropped, since their stored
// scores are computed from collection statistics that just changed;
// re-run Materialize or SelfManage afterwards. AddDocuments is a
// maintenance operation: exclusive with other maintenance operations,
// concurrent with queries except during apply steps.
func (e *Engine) AddDocuments(docs []corpus.Document) (*AddStats, error) {
	if len(docs) == 0 {
		return &AddStats{}, nil
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	// Stage outside the write lock: parse/tokenize is the expensive,
	// failure-prone part and it touches no shared state.
	batch, err := index.StageDocuments(e.format, docs)
	if err != nil {
		return nil, fmt.Errorf("trex: add documents (stage phase, nothing written): %w", err)
	}
	return e.commitStaged(batch, nil)
}

// commitStaged applies one staged batch and commits it. Caller holds
// maintMu. stagedAt, when non-nil, carries the per-document staging
// times for the freshness-lag histogram (nil for plain AddDocuments).
func (e *Engine) commitStaged(batch *index.StagedBatch, stagedAt []time.Time) (*AddStats, error) {
	t0 := time.Now()
	e.beginWrite()
	defer e.endWrite()
	as, err := index.ApplyStaged(e.store, batch, e.sum)
	if err != nil {
		return nil, fmt.Errorf("trex: add documents (apply phase): %w", err)
	}
	e.invalidateTranslations()
	if err := e.saveSummary(); err != nil {
		return nil, fmt.Errorf("trex: add documents (persist-summary phase, base rows and stats already written): %w", err)
	}
	dropped, err := index.DropAllLists(e.store)
	if err != nil {
		return nil, fmt.Errorf("trex: add documents (drop-lists phase, stats already merged, lists partially dropped): %w", err)
	}
	if e.docs != nil {
		for _, d := range batch.Docs {
			if err := e.docs.Put(d.ID, d.Data); err != nil {
				return nil, fmt.Errorf("trex: add documents (store-documents phase, index already updated): %w", err)
			}
		}
	}
	if err := e.store.CommitLists(); err != nil {
		return nil, fmt.Errorf("trex: add documents (segment commit phase, index updated in memory): %w", err)
	}
	if err := e.db.Flush(); err != nil {
		return nil, fmt.Errorf("trex: add documents (commit phase, index updated in memory): %w", err)
	}
	if m := e.met; m != nil {
		m.ingestBatches.Inc()
		m.ingestDocs.Add(uint64(as.Docs))
		m.ingestCommitDur.Observe(time.Since(t0).Seconds())
		now := time.Now()
		for _, ts := range stagedAt {
			m.ingestFreshness.Observe(now.Sub(ts).Seconds())
		}
	}
	// New documents shift term statistics and may open new sids: ask the
	// autopilot to re-plan the materialized set against the new corpus.
	if p := e.pilot.Load(); p != nil {
		p.Kick()
	}
	return &AddStats{
		Docs:               as.Docs,
		Elements:           as.Elements,
		Postings:           as.Postings,
		NewSIDs:            as.NewSIDs,
		DroppedListEntries: dropped,
	}, nil
}
