package trex

import (
	"fmt"

	"trex/internal/corpus"
	"trex/internal/index"
)

// AddStats reports what AddDocuments changed.
type AddStats struct {
	// Docs and Elements added; Postings is new term occurrences.
	Docs     int
	Elements int
	Postings int64
	// NewSIDs counts summary nodes created for previously unseen paths.
	NewSIDs int
	// DroppedListEntries counts stale RPL/ERPL entries reclaimed (all
	// materialized lists are invalidated by a collection change, because
	// stored scores depend on collection statistics).
	DroppedListEntries int
}

// AddDocuments appends documents to the collection and updates the base
// indexes incrementally: the structural summary grows for unseen paths,
// element rows and posting fragments are inserted, and term/collection
// statistics are merged. Document ids must continue the existing dense
// sequence (the collection is append-only).
//
// All materialized RPL/ERPL lists are dropped, since their stored scores
// are computed from collection statistics that just changed; re-run
// Materialize or SelfManage afterwards. AddDocuments is a maintenance
// operation: it may run while queries are served (it holds the engine
// write lock for its duration) but is exclusive with other maintenance
// operations.
//
// The phases run in sequence: append base rows and merge statistics,
// persist the extended summary, drop all materialized lists, then store
// raw documents (when StoreDocuments is on). There is no rollback;
// errors say which phase failed. In particular, an error in or after the
// drop-lists phase leaves the engine with statistics already merged and
// materialized lists partially (or fully) dropped — queries stay correct
// because every strategy falls back to the base tables, but redundant
// lists must be rebuilt via Materialize or SelfManage.
func (e *Engine) AddDocuments(docs []corpus.Document) (*AddStats, error) {
	if len(docs) == 0 {
		return &AddStats{}, nil
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.beginWrite()
	defer e.endWrite()
	as, err := index.AppendDocuments(e.store, docs, e.sum)
	if err != nil {
		return nil, fmt.Errorf("trex: add documents (append phase): %w", err)
	}
	e.invalidateTranslations()
	if err := e.saveSummary(); err != nil {
		return nil, fmt.Errorf("trex: add documents (persist-summary phase, base rows and stats already written): %w", err)
	}
	dropped, err := index.DropAllLists(e.store)
	if err != nil {
		return nil, fmt.Errorf("trex: add documents (drop-lists phase, stats already merged, lists partially dropped): %w", err)
	}
	if e.docs != nil {
		for _, d := range docs {
			if err := e.docs.Put(d.ID, d.Data); err != nil {
				return nil, fmt.Errorf("trex: add documents (store-documents phase, index already updated): %w", err)
			}
		}
	}
	if err := e.store.CommitLists(); err != nil {
		return nil, fmt.Errorf("trex: add documents (segment commit phase, index updated in memory): %w", err)
	}
	if err := e.db.Flush(); err != nil {
		return nil, fmt.Errorf("trex: add documents (commit phase, index updated in memory): %w", err)
	}
	return &AddStats{
		Docs:               as.Docs,
		Elements:           as.Elements,
		Postings:           as.Postings,
		NewSIDs:            as.NewSIDs,
		DroppedListEntries: dropped,
	}, nil
}
