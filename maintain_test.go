package trex

import (
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
)

// TestAddDocumentsEquivalentToFullBuild is the central maintenance
// invariant: building 30 docs then appending 10 must answer queries
// identically to building all 40 at once.
func TestAddDocumentsEquivalentToFullBuild(t *testing.T) {
	full := corpus.GenerateIEEE(40, 55)

	partial := &corpus.Collection{
		Style:   full.Style,
		Aliases: full.Aliases,
		Docs:    full.Docs[:30],
	}
	incr, err := CreateMemory(partial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer incr.Close()
	as, err := incr.AddDocuments(full.Docs[30:])
	if err != nil {
		t.Fatal(err)
	}
	if as.Docs != 10 || as.Elements == 0 || as.Postings == 0 {
		t.Fatalf("AddStats = %+v", as)
	}

	whole, err := CreateMemory(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()

	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking state space explosion)]`,
		`//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`,
	}
	for _, q := range queries {
		a, err := incr.Query(q, 0, MethodERA)
		if err != nil {
			t.Fatalf("%s incremental: %v", q, err)
		}
		b, err := whole.Query(q, 0, MethodERA)
		if err != nil {
			t.Fatalf("%s full: %v", q, err)
		}
		if a.TotalAnswers != b.TotalAnswers {
			t.Fatalf("%s: incremental %d answers, full %d", q, a.TotalAnswers, b.TotalAnswers)
		}
		for i := range b.Answers {
			// Paths/sids can differ in numbering when new paths appear in
			// a different order, so compare by (doc, span, score).
			ai, bi := a.Answers[i], b.Answers[i]
			if ai.Doc != bi.Doc || ai.Start != bi.Start || ai.End != bi.End {
				t.Fatalf("%s answer %d: incremental %+v vs full %+v", q, i, ai, bi)
			}
			if diff := ai.Score - bi.Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s answer %d score: %v vs %v", q, i, ai.Score, bi.Score)
			}
		}
	}

	// Statistics converged too.
	ia, err := incr.Store().CollectionStats()
	if err != nil {
		t.Fatal(err)
	}
	wa, err := whole.Store().CollectionStats()
	if err != nil {
		t.Fatal(err)
	}
	if ia.NumDocs != wa.NumDocs || ia.NumElements != wa.NumElements {
		t.Fatalf("stats differ: %+v vs %+v", ia, wa)
	}
	if diff := ia.AvgElementLen - wa.AvgElementLen; diff > 0.001 || diff < -0.001 {
		t.Fatalf("avg length differs: %v vs %v", ia.AvgElementLen, wa.AvgElementLen)
	}
}

func TestAddDocumentsInvalidatesLists(t *testing.T) {
	col := corpus.GenerateIEEE(20, 66)
	eng, err := CreateMemory(&corpus.Collection{
		Style: col.Style, Aliases: col.Aliases, Docs: col.Docs[:15],
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const q = `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	ok, err := eng.CanUse(q, MethodMerge)
	if err != nil || !ok {
		t.Fatalf("merge unavailable after materialize: %v %v", ok, err)
	}
	as, err := eng.AddDocuments(col.Docs[15:])
	if err != nil {
		t.Fatal(err)
	}
	if as.DroppedListEntries == 0 {
		t.Fatal("stale lists were not dropped")
	}
	ok, err = eng.CanUse(q, MethodMerge)
	if err != nil || ok {
		t.Fatalf("merge still claimed available after append: %v %v", ok, err)
	}
	// Re-materializing restores Merge, with scores reflecting new stats.
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	era, err := eng.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	mrg, err := eng.Query(q, 10, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	for i := range era.Answers {
		if era.Answers[i] != mrg.Answers[i] {
			t.Fatalf("post-append answers differ at %d", i)
		}
	}
}

func TestAddDocumentsNewPathsGetNewSIDs(t *testing.T) {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><sec>alpha beta</sec></article>`)},
	}}
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before := eng.Summary().NumNodes()
	as, err := eng.AddDocuments([]corpus.Document{
		{ID: 1, Data: []byte(`<article><appendix><sec>alpha gamma</sec></appendix></article>`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if as.NewSIDs != 2 { // appendix and appendix/sec
		t.Fatalf("NewSIDs = %d, want 2", as.NewSIDs)
	}
	if eng.Summary().NumNodes() != before+2 {
		t.Fatalf("summary nodes = %d, want %d", eng.Summary().NumNodes(), before+2)
	}
	// Querying the new structure works.
	res, err := eng.Query(`//appendix//sec[about(., alpha)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Doc != 1 {
		t.Fatalf("answers = %+v", res.Answers)
	}
	// Old structure still answers.
	res, err = eng.Query(`//article//sec[about(., alpha)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAnswers != 2 {
		t.Fatalf("combined answers = %d, want 2", res.TotalAnswers)
	}
}

func TestAddDocumentsIDValidation(t *testing.T) {
	col := corpus.GenerateIEEE(5, 1)
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Gap in ids.
	if _, err := eng.AddDocuments([]corpus.Document{{ID: 7, Data: []byte(`<a>x</a>`)}}); err == nil {
		t.Fatal("gap id accepted")
	}
	// Reused id.
	if _, err := eng.AddDocuments([]corpus.Document{{ID: 2, Data: []byte(`<a>x</a>`)}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Empty append is a no-op.
	as, err := eng.AddDocuments(nil)
	if err != nil || as.Docs != 0 {
		t.Fatalf("empty append = %+v, %v", as, err)
	}
	// Malformed document rejected, engine still usable.
	if _, err := eng.AddDocuments([]corpus.Document{{ID: 5, Data: []byte(`<broken`)}}); err == nil {
		t.Fatal("malformed doc accepted")
	}
	if _, err := eng.Query(`//article[about(., ontologies)]`, 5, MethodERA); err != nil {
		t.Fatalf("engine unusable after failed append: %v", err)
	}
}

func TestAddDocumentsPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trex.db"
	col := corpus.GenerateIEEE(12, 77)
	eng, err := Create(path, &corpus.Collection{
		Style: col.Style, Aliases: col.Aliases, Docs: col.Docs[:8],
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddDocuments(col.Docs[8:]); err != nil {
		t.Fatal(err)
	}
	const q = `//article//sec[about(., ontologies case study)]`
	want, err := eng.Query(q, 0, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	got, err := eng2.Query(q, 0, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAnswers != want.TotalAnswers {
		t.Fatalf("answers after reopen = %d, want %d", got.TotalAnswers, want.TotalAnswers)
	}
}
