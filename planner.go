package trex

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"trex/internal/index"
	"trex/internal/planner"
	"trex/internal/retrieval"
	"trex/internal/score"
	"trex/internal/telemetry"
)

// PlannerOptions configures the online query planner: the cost model
// that resolves MethodAuto to a concrete retrieval strategy per query,
// calibrated continuously from observed runs. A nil pointer in Options
// enables the planner with defaults — planning is the intended steady
// state; set Disabled to fall back to the legacy static heuristic
// (coverage plus a fixed k threshold).
type PlannerOptions struct {
	// Disabled reverts MethodAuto to the static pick and turns off
	// observation, shadow sampling and the trex_planner_* metrics.
	Disabled bool
	// ShadowFraction is the fraction of auto-planned queries that also
	// run the predicted runner-up in the background ("shadow sampling"),
	// under its own I/O guard window, to keep the model honest: the
	// shadow's measured cost is fed to the model, and when it beats the
	// chosen method's the misprediction and its regret are recorded.
	// 0 uses DefaultShadowFraction; negative disables shadowing; values
	// above 1 are clamped to 1 (every auto-planned query shadows).
	ShadowFraction float64
}

// DefaultShadowFraction is the shadow-sampling rate when none is given:
// 1 in 50 auto-planned queries re-runs the runner-up.
const DefaultShadowFraction = 0.02

// plannerState is the engine's planner wiring: the shared model, the
// shadow sampler, and the counters behind PlannerStatus and the
// trex_planner_* metrics. Counters are planner-owned atomics (not
// telemetry instruments) so status works with telemetry disabled; the
// metrics registry reads them through func metrics.
type plannerState struct {
	model          *planner.Planner
	shadowFraction float64

	// shadowSeq drives the deterministic accumulator sampler: query n
	// shadows iff floor(n*f) > floor((n-1)*f), which spreads samples
	// evenly with no RNG state.
	shadowSeq atomic.Uint64

	decisions      [planner.NumMethods]atomic.Uint64
	fallbacks      atomic.Uint64
	shadowSamples  atomic.Uint64
	shadowErrors   atomic.Uint64
	mispredictions atomic.Uint64

	// regret is the misprediction regret histogram ((chosen - shadow) /
	// shadow measured cost); nil when telemetry is disabled.
	regret *telemetry.Histogram

	// shadowWG tracks in-flight shadow goroutines so tests (and callers
	// that want deterministic shadow accounting) can drain them; the
	// engine-level inflight group is what writers wait on.
	shadowWG sync.WaitGroup
}

// initPlanner wires the planner per opts. Called once from build/Open
// after initTelemetry, before the engine is shared.
func (e *Engine) initPlanner(opts *PlannerOptions) {
	var o PlannerOptions
	if opts != nil {
		o = *opts
	}
	if o.Disabled {
		return
	}
	frac := o.ShadowFraction
	switch {
	case frac == 0:
		frac = DefaultShadowFraction
	case frac < 0:
		frac = 0
	case frac > 1:
		frac = 1
	}
	p := &plannerState{model: planner.New(), shadowFraction: frac}
	if m := e.met; m != nil {
		registerPlannerMetrics(m.reg, p)
		p.regret = m.reg.Histogram("trex_planner_regret",
			"Relative regret of mispredicted plans: (chosen - runner-up) / runner-up measured cost, recorded by shadow samples that beat the chosen method.", nil, nil)
	}
	e.pln = p
}

// registerPlannerMetrics exposes the planner's counters as func metrics,
// mirroring registerFrontdoorMetrics: the state owns the atomics, the
// scrape path reads them.
func registerPlannerMetrics(reg *telemetry.Registry, p *plannerState) {
	for m := planner.Method(0); m < planner.NumMethods; m++ {
		mm := m
		reg.CounterFunc("trex_planner_decisions_total",
			"MethodAuto resolutions by predicted-cheapest method.",
			telemetry.Labels{"method": mm.String()},
			func() uint64 { return p.decisions[mm].Load() })
	}
	reg.CounterFunc("trex_planner_fallbacks_total",
		"MethodAuto resolutions that fell back to the static heuristic (feature extraction failed).", nil,
		p.fallbacks.Load)
	reg.CounterFunc("trex_planner_shadow_samples_total",
		"Auto-planned queries that additionally ran the predicted runner-up.", nil,
		p.shadowSamples.Load)
	reg.CounterFunc("trex_planner_shadow_errors_total",
		"Shadow runs that failed (their cost was not observed).", nil,
		p.shadowErrors.Load)
	reg.CounterFunc("trex_planner_mispredictions_total",
		"Shadow samples whose runner-up ran cheaper than the chosen method.", nil,
		p.mispredictions.Load)
	reg.CounterFunc("trex_planner_observations_total",
		"Measured runs fed into the cost model.", nil,
		p.model.Observations)
	reg.GaugeFunc("trex_planner_calibrated_buckets",
		"Feature buckets with at least one observed sample.", nil,
		func() float64 { return float64(p.model.CalibratedBuckets()) })
	reg.GaugeFunc("trex_planner_staleness_seconds",
		"Seconds since the cost model last absorbed an observation (-1 = never).", nil,
		func() float64 {
			if p.model.LastObservation().IsZero() {
				return -1
			}
			return p.model.Staleness(time.Now()).Seconds()
		})
}

// toEngineMethod maps a planner verdict to the engine's Method enum.
func toEngineMethod(m planner.Method) Method {
	switch m {
	case planner.ERA:
		return MethodERA
	case planner.TA:
		return MethodTA
	case planner.NRA:
		return MethodNRA
	case planner.Merge:
		return MethodMerge
	default:
		return MethodERA
	}
}

// toPlannerMethod maps an executed engine method to the planner enum;
// ok is false for methods the model does not track (Auto, Race).
func toPlannerMethod(m Method) (planner.Method, bool) {
	switch m {
	case MethodERA:
		return planner.ERA, true
	case MethodTA:
		return planner.TA, true
	case MethodNRA:
		return planner.NRA, true
	case MethodMerge:
		return planner.Merge, true
	default:
		return 0, false
	}
}

// planFeatures builds the query's plan-time feature vector from the
// translated shape and the stat cache — exact per-list entry/byte/block
// counts and term collection frequencies, all answered from memoized
// catalog lookups, so steady-state planning reads zero storage pages.
// Callers hold the engine read lock.
func (e *Engine) planFeatures(sids []uint32, terms []string, kEval int) (planner.Features, error) {
	f := planner.Features{
		NumSIDs:     len(sids),
		NumTerms:    len(terms),
		K:           kEval,
		RPLCovered:  true,
		ERPLCovered: true,
	}
	for _, t := range terms {
		cf, err := e.store.TermCFCached(t)
		if err != nil {
			return f, err
		}
		f.PostingsPositions += cf
		for _, sid := range sids {
			st, err := e.store.ListStat(index.KindRPL, t, sid)
			if err != nil {
				return f, err
			}
			if st.Built {
				f.RPLEntries += int64(st.Entries)
				f.RPLBytes += st.Bytes
				f.RPLBlocks += int64(st.Blocks)
			} else {
				f.RPLCovered = false
			}
			st, err = e.store.ListStat(index.KindERPL, t, sid)
			if err != nil {
				return f, err
			}
			if st.Built {
				f.ERPLEntries += int64(st.Entries)
				f.ERPLBytes += st.Bytes
				f.ERPLBlocks += int64(st.Blocks)
			} else {
				f.ERPLCovered = false
			}
		}
	}
	return f, nil
}

// observeRun feeds one successful, fully measured retrieval into the
// cost model. Approximate (deadline-stopped) runs are skipped — their
// cost covers an unknown fraction of the work.
func (e *Engine) observeRun(m Method, f planner.Features, st *retrieval.Stats) {
	p := e.pln
	if p == nil || st == nil || st.Approximate {
		return
	}
	pm, ok := toPlannerMethod(m)
	if !ok {
		return
	}
	p.model.Observe(pm, f, st.CostProxy())
}

// shouldShadow implements the deterministic sampler.
func (p *plannerState) shouldShadow() bool {
	if p.shadowFraction <= 0 {
		return false
	}
	n := p.shadowSeq.Add(1)
	f := p.shadowFraction
	return math.Floor(float64(n)*f) > math.Floor(float64(n-1)*f)
}

// launchShadow runs the planner's runner-up in the background for one
// sampled auto-planned query, mirroring a MethodRace loser's lifecycle:
// registered with the engine's inflight group while the caller still
// holds the read lock (so writers drain it before mutating storage),
// measuring under its own guard window (so its I/O taints any exactness
// window it overlaps instead of corrupting one), and detached from the
// caller's context. The shadow's measured cost calibrates the model;
// when it beats the chosen method's cost, the misprediction and its
// relative regret are recorded.
func (e *Engine) launchShadow(runnerUp Method, sids []uint32, terms []string, sc *score.Scorer, kEval int, f planner.Features, chosenCost float64) {
	p := e.pln
	p.shadowSamples.Add(1)
	e.inflight.Add(1)
	p.shadowWG.Add(1)
	go func() {
		defer e.inflight.Done()
		defer p.shadowWG.Done()
		if m := e.met; m != nil {
			w := m.guard.Enter()
			defer w.Exit()
		}
		ctx := context.Background()
		var st *retrieval.Stats
		var err error
		switch runnerUp {
		case MethodERA:
			_, st, err = retrieval.ExhaustiveTopKCtx(ctx, e.store, sids, terms, sc, kEval)
		case MethodTA:
			_, st, err = retrieval.TACtx(ctx, e.store, sids, terms, sc, shadowK(kEval))
		case MethodNRA:
			_, st, err = retrieval.NRACtx(ctx, e.store, sids, terms, shadowK(kEval))
		case MethodMerge:
			_, st, err = retrieval.MergeCtx(ctx, e.store, sids, terms, kEval)
		default:
			return
		}
		if err != nil || st == nil {
			p.shadowErrors.Add(1)
			return
		}
		cost := st.CostProxy()
		if pm, ok := toPlannerMethod(runnerUp); ok {
			p.model.Observe(pm, f, cost)
		}
		if cost < chosenCost && cost > 0 {
			p.mispredictions.Add(1)
			if p.regret != nil {
				p.regret.Observe((chosenCost - cost) / cost)
			}
		}
	}()
}

// shadowK mirrors retrieve()'s k handling for the threshold strategies:
// they need a concrete k, so "all answers" becomes an unreachable bound.
func shadowK(kEval int) int {
	if kEval <= 0 {
		return 1 << 30
	}
	return kEval
}

// DrainShadows blocks until every in-flight shadow run has finished —
// deterministic accounting for tests and benchmarks.
func (e *Engine) DrainShadows() {
	if p := e.pln; p != nil {
		p.shadowWG.Wait()
	}
}

// PlannerStatus is the snapshot behind GET /planner.
type PlannerStatus struct {
	// Enabled reports whether MethodAuto resolves through the cost
	// model; when false every other field is zero.
	Enabled        bool    `json:"enabled"`
	ShadowFraction float64 `json:"shadowFraction"`
	// Decisions counts MethodAuto resolutions by chosen method;
	// Fallbacks counts resolutions through the static heuristic
	// (feature extraction failed).
	Decisions map[string]uint64 `json:"decisions,omitempty"`
	Fallbacks uint64            `json:"fallbacks"`
	// ShadowSamples/ShadowErrors/Mispredictions describe the shadow
	// sampler: runs launched, runs failed, runs that beat the chosen
	// method.
	ShadowSamples  uint64 `json:"shadowSamples"`
	ShadowErrors   uint64 `json:"shadowErrors"`
	Mispredictions uint64 `json:"mispredictions"`
	// Observations/CalibratedBuckets/StalenessSeconds describe the cost
	// model: measured runs absorbed, feature buckets with samples, and
	// seconds since the last observation (-1 when it never observed).
	Observations      uint64  `json:"observations"`
	CalibratedBuckets int     `json:"calibratedBuckets"`
	StalenessSeconds  float64 `json:"stalenessSeconds"`
}

// PlannerStatus reports the planner's live state (zero-valued with
// Enabled false when the planner is disabled).
func (e *Engine) PlannerStatus() PlannerStatus {
	p := e.pln
	if p == nil {
		return PlannerStatus{}
	}
	st := PlannerStatus{
		Enabled:           true,
		ShadowFraction:    p.shadowFraction,
		Decisions:         make(map[string]uint64, planner.NumMethods),
		Fallbacks:         p.fallbacks.Load(),
		ShadowSamples:     p.shadowSamples.Load(),
		ShadowErrors:      p.shadowErrors.Load(),
		Mispredictions:    p.mispredictions.Load(),
		Observations:      p.model.Observations(),
		CalibratedBuckets: p.model.CalibratedBuckets(),
		StalenessSeconds:  -1,
	}
	for m := planner.Method(0); m < planner.NumMethods; m++ {
		st.Decisions[m.String()] = p.decisions[m].Load()
	}
	if !p.model.LastObservation().IsZero() {
		st.StalenessSeconds = p.model.Staleness(time.Now()).Seconds()
	}
	return st
}

// PlannerModel exposes the underlying cost model (nil when disabled);
// the advisor feeds measurement runs through it and asks it how a
// workload query would be routed under hypothetical coverage.
func (e *Engine) PlannerModel() *planner.Planner {
	if p := e.pln; p != nil {
		return p.model
	}
	return nil
}
