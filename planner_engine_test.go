package trex

import (
	"fmt"
	"sync"
	"testing"

	"trex/internal/index"
	"trex/internal/oracle/gen"
)

// plannerTestQueries builds the tag × word grid over the oracle corpus:
// twenty single-clause queries with genuinely different list volumes.
func plannerTestQueries() []string {
	var qs []string
	for _, tag := range []string{"r", "s", "t", "u"} {
		for _, word := range []string{"ax", "bx", "cx", "dx", "ex"} {
			qs = append(qs, fmt.Sprintf("//%s[about(., %s)]", tag, word))
		}
	}
	return qs
}

// TestPlannerConvergence calibrates the planner by running every query
// under every fixed method (each exact run feeds the model), then checks
// that MethodAuto routes at least 90% of the workload to the method the
// measurements themselves say is cheapest. Fully deterministic: costs
// are CostProxy values and the model's update order is the loop order.
func TestPlannerConvergence(t *testing.T) {
	docs := make([]int, 48)
	for i := range docs {
		docs[i] = i
	}
	col := gen.Collection(11, docs)
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	queries := plannerTestQueries()
	const k = 5
	methods := []Method{MethodERA, MethodTA, MethodNRA, MethodMerge}
	costs := make(map[string]map[Method]float64, len(queries))
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatalf("materialize %q: %v", q, err)
		}
		costs[q] = make(map[Method]float64, len(methods))
		for _, m := range methods {
			res, err := eng.Query(q, k, m)
			if err != nil {
				t.Fatalf("calibrate %q with %v: %v", q, m, err)
			}
			if res.Stats == nil || res.Stats.Approximate {
				t.Fatalf("calibrate %q with %v: no exact stats", q, m)
			}
			costs[q][m] = res.Stats.CostProxy()
		}
	}

	matches := 0
	for _, q := range queries {
		res, err := eng.Query(q, k, MethodAuto)
		if err != nil {
			t.Fatalf("auto %q: %v", q, err)
		}
		if res.Plan == nil {
			t.Fatalf("auto %q: no plan attached", q)
		}
		if res.Plan.ColdStart {
			t.Fatalf("auto %q: still cold-starting after calibration", q)
		}
		if got := toEngineMethod(res.Plan.Method); got != res.Method {
			t.Fatalf("auto %q: plan says %v, ran %v", q, got, res.Method)
		}
		best := methods[0]
		for _, m := range methods[1:] {
			if costs[q][m] < costs[q][best] {
				best = m
			}
		}
		// A pick that measures no worse than the cheapest is a match too
		// (ties are real: tiny lists cost the same under TA and NRA).
		if res.Method == best || costs[q][res.Method] <= costs[q][best] {
			matches++
		} else {
			t.Logf("%q: auto ran %v (measured %v), cheapest %v (measured %v)",
				q, res.Method, costs[q][res.Method], best, costs[q][best])
		}
	}
	if frac := float64(matches) / float64(len(queries)); frac < 0.9 {
		t.Fatalf("auto matched the measured-cheapest method on %d/%d queries (%.0f%%), want >= 90%%",
			matches, len(queries), frac*100)
	}
	eng.DrainShadows()
}

// TestShadowSamplingRace races shadow-sampled auto queries against
// concurrent index maintenance (materialize and self-manage cycles that
// drop lists mid-flight). Run under -race; the invariant is simply that
// nothing tears: queries succeed, shadows drain, and the engine's
// counters account for every sample.
func TestShadowSamplingRace(t *testing.T) {
	col := gen.Collection(23, []int{0, 1, 2, 3, 4, 5, 6, 7})
	eng, err := CreateMemory(col, &Options{Planner: &PlannerOptions{ShadowFraction: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	queries := plannerTestQueries()[:8]
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(g*7+i)%len(queries)]
				// NoCache so every iteration actually plans (a cache hit
				// would skip the planner and its shadow launch).
				if _, err := eng.QueryOpts(q, QueryOptions{K: 5, NoCache: true}); err != nil {
					t.Errorf("auto %q: %v", q, err)
					return
				}
			}
		}(g)
	}

	// Maintenance churn: alternate a zero-budget self-manage pass (drops
	// every referenced list) with re-materialization, flipping coverage
	// under the feet of in-flight shadows.
	workload := []WorkloadQuery{
		{NEXI: queries[0], Freq: 0.5, K: 5},
		{NEXI: queries[1], Freq: 0.5, K: 5},
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.SelfManage(workload, 0, SolverGreedy); err != nil {
			t.Fatalf("self-manage round %d: %v", i, err)
		}
		for _, q := range queries[:2] {
			if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
				t.Fatalf("re-materialize round %d: %v", i, err)
			}
		}
	}
	wg.Wait()
	eng.DrainShadows()

	st := eng.PlannerStatus()
	if !st.Enabled {
		t.Fatal("planner disabled")
	}
	if st.ShadowSamples == 0 {
		t.Fatal("no shadow samples despite fraction 1")
	}
	var decisions uint64
	for _, n := range st.Decisions {
		decisions += n
	}
	if decisions == 0 {
		t.Fatal("no auto decisions recorded")
	}
	t.Logf("decisions=%d shadows=%d errors=%d mispredictions=%d observations=%d",
		decisions, st.ShadowSamples, st.ShadowErrors, st.Mispredictions, st.Observations)
}
