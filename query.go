package trex

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"trex/internal/index"
	"trex/internal/nexi"
	"trex/internal/planner"
	"trex/internal/retrieval"
	"trex/internal/score"
	"trex/internal/telemetry"
	"trex/internal/translate"
)

// Method selects a retrieval strategy.
type Method int

const (
	// MethodAuto lets the engine pick the strategy. With the online
	// planner enabled (the default) the pick comes from a continuously
	// calibrated cost model over the query's feature vector; with the
	// planner disabled it falls back to the static heuristic (list
	// coverage plus a fixed k threshold).
	MethodAuto Method = iota
	// MethodERA forces the exhaustive algorithm (always available).
	MethodERA
	// MethodTA forces the threshold algorithm (requires RPL coverage for
	// meaningful results).
	MethodTA
	// MethodMerge forces the Merge algorithm (requires ERPL coverage).
	MethodMerge
	// MethodRace runs TA and Merge concurrently and returns the result of
	// whichever finishes first — the parallel evaluation Section 4 of the
	// paper describes for systems that store both an RPL and an ERPL.
	// Requires both coverages. Since the online planner took over
	// MethodAuto, racing is a legacy mode: it burns the loser's pages
	// and an admission slot on every query, where the planner pays that
	// double evaluation only on the sampled shadow fraction. Kept for
	// explicit callers and as the bench baseline.
	MethodRace
	// MethodNRA is the sorted-access-only threshold algorithm (the
	// TopX-style variant the paper's TA implementation follows): no
	// random accesses, candidate score bounds instead. Requires RPL
	// coverage.
	MethodNRA
)

func (m Method) String() string {
	switch m {
	case MethodERA:
		return "era"
	case MethodTA:
		return "ta"
	case MethodMerge:
		return "merge"
	case MethodRace:
		return "race"
	case MethodNRA:
		return "nra"
	default:
		return "auto"
	}
}

// taPreferredK is the k at or below which TA is preferred over Merge when
// both are available — the paper's figures show TA winning only at very
// small k.
const taPreferredK = 10

// Answer is one ranked query result.
type Answer struct {
	// Doc is the document id; Start/End the element's byte span.
	Doc   uint32
	Start uint32
	End   uint32
	// SID is the element's summary node; Path its label path expression.
	SID  uint32
	Path string
	// Score is the combined relevance score.
	Score float64
}

// Result is a query evaluation outcome.
type Result struct {
	Query  string
	Method Method
	K      int
	// Answers, best first, at most K (all when K <= 0).
	Answers []Answer
	// TotalAnswers counts matches before the final top-k cut. For
	// single-clause queries the retrieval phase itself may be truncated
	// at k (that is the point of top-k evaluation), in which case
	// TotalAnswers equals len(Answers); query with k <= 0 to count all
	// matches.
	TotalAnswers int
	// Translation exposes the (sids, terms) the query mapped to.
	Translation *translate.Translation
	// Stats describes the retrieval phase (the part the paper times).
	Stats *retrieval.Stats
	// Plan is the planner's decision when the query came in as
	// MethodAuto and the online planner resolved it: the predicted
	// costs of every candidate method alongside the pick. Nil for
	// fixed-method queries, for cached results, and when the planner is
	// disabled (the legacy static heuristic leaves no decision record).
	Plan *planner.Decision
	// Trace is the per-query span breakdown (nil when telemetry is
	// disabled): timed phases with page/byte counts attributed per span.
	Trace *telemetry.Trace
	// Approximate reports that the query's deadline expired mid-
	// retrieval: Answers is the correctly ranked best-effort state at
	// the stop point, not the rank-safe top k. Approximate results are
	// never cached.
	Approximate bool
	// Cached reports the result was served from the front door's result
	// cache (identical ranking to a fresh evaluation — the epoch key
	// guarantees no write happened since the fill). Treat a cached
	// Result as read-only: its Answers and Stats are shared.
	Cached bool
}

// flatten returns the union of clause sids (plus the target extents, so
// answer elements are retrieved even when every about() uses a relative
// path) and the distinct positive terms — the "lists sid_1..sid_m and
// t_1..t_n" of the paper's retrieval phase.
func flatten(tr *translate.Translation) (sids []uint32, terms []string) {
	seen := make(map[uint32]bool)
	add := func(list []uint32) {
		for _, s := range list {
			if !seen[s] {
				seen[s] = true
				sids = append(sids, s)
			}
		}
	}
	for i := range tr.Clauses {
		add(tr.Clauses[i].SIDs)
	}
	add(tr.TargetSIDs)
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	return sids, tr.DistinctTerms()
}

func negativeTerms(tr *translate.Translation) []string {
	seen := make(map[string]bool)
	var out []string
	for i := range tr.Clauses {
		for _, w := range tr.Clauses[i].NegativeTerms() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// Translate parses and translates a NEXI query without evaluating it,
// under the vague interpretation (the TReX default).
func (e *Engine) Translate(src string) (*translate.Translation, error) {
	return e.TranslateMode(src, translate.ModeVague)
}

// TranslateMode translates under an explicit interpretation. ModeStrict
// requires exact label matches; over an alias-built summary it therefore
// only matches canonical labels. Results are cached per (query, mode)
// with LRU eviction — a full cache evicts only the least recently used
// entry, so a steady workload larger than the cache degrades gradually
// instead of periodically retranslating everything. AddDocuments
// invalidates the cache (the summary may have grown).
func (e *Engine) TranslateMode(src string, mode translate.Mode) (*translate.Translation, error) {
	e.beginRead()
	defer e.endRead()
	return e.translateMode(src, mode)
}

// translationCacheSize bounds the per-engine translation cache. Workload
// evaluation re-runs the same few queries constantly; translation scans
// every summary node, so caching it matters at high query rates.
const translationCacheSize = 256

// trCacheEntry is one LRU-tracked translation (the key is kept alongside
// the value so eviction can delete its map entry).
type trCacheEntry struct {
	key string
	tr  *translate.Translation
}

// translateMode is TranslateMode without engine-level locking; callers
// hold the read or write side of e.rw.
func (e *Engine) translateMode(src string, mode translate.Mode) (*translate.Translation, error) {
	tr, _, err := e.translateModeHit(src, mode)
	return tr, err
}

// translateModeHit is translateMode plus a cache-hit report, so the
// query trace can mark its translate span as served from cache.
func (e *Engine) translateModeHit(src string, mode translate.Mode) (*translate.Translation, bool, error) {
	key := mode.String() + "\x00" + src
	e.trMu.Lock()
	if el, ok := e.trCache[key]; ok {
		e.trLRU.MoveToFront(el)
		tr := el.Value.(*trCacheEntry).tr
		e.trMu.Unlock()
		if m := e.met; m != nil {
			m.translateHits.Inc()
		}
		return tr, true, nil
	}
	e.trMu.Unlock()
	if m := e.met; m != nil {
		m.translateMisses.Inc()
	}

	q, err := nexi.Parse(src)
	if err != nil {
		return nil, false, err
	}
	tr, err := translate.Translate(q, e.sum, mode)
	if err != nil {
		return nil, false, err
	}
	e.trMu.Lock()
	defer e.trMu.Unlock()
	if e.trCache == nil {
		e.trCache = make(map[string]*list.Element, translationCacheSize)
		e.trLRU = list.New()
	}
	if el, ok := e.trCache[key]; ok {
		// Another goroutine translated the same query concurrently; keep
		// the cached copy canonical.
		e.trLRU.MoveToFront(el)
		return el.Value.(*trCacheEntry).tr, false, nil
	}
	for len(e.trCache) >= translationCacheSize {
		back := e.trLRU.Back()
		e.trLRU.Remove(back)
		delete(e.trCache, back.Value.(*trCacheEntry).key)
	}
	e.trCache[key] = e.trLRU.PushFront(&trCacheEntry{key: key, tr: tr})
	return tr, false, nil
}

// invalidateTranslations drops the cache after a summary change.
func (e *Engine) invalidateTranslations() {
	e.trMu.Lock()
	e.trCache = nil
	e.trLRU = nil
	e.trMu.Unlock()
}

// Materialize builds the redundant lists (RPLs and/or ERPLs) the query
// needs, enabling TA and/or Merge for it. It is a maintenance operation:
// safe to run while queries are served (it takes the engine write lock
// for the build), exclusive with other maintenance operations.
func (e *Engine) Materialize(src string, kinds ...index.ListKind) (*retrieval.MaterializeStats, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.beginWrite()
	defer e.endWrite()
	tr, err := e.translateMode(src, translate.ModeVague)
	if err != nil {
		return nil, err
	}
	sids, terms := flatten(tr)
	sc, err := e.store.NewScorer(terms)
	if err != nil {
		return nil, err
	}
	ms, err := retrieval.Materialize(e.store, sids, terms, sc, kinds...)
	if err != nil {
		return nil, err
	}
	// Publish the new lists to the segment replica before the pager
	// flush: if we die between the two, the reopened pager is still on
	// the old epoch and the index layer rebuilds the segment from it.
	if err := e.store.CommitLists(); err != nil {
		return nil, fmt.Errorf("trex: materialize (segment commit phase, lists built in memory): %w", err)
	}
	if err := e.db.Flush(); err != nil {
		return nil, fmt.Errorf("trex: materialize (commit phase, lists built in memory): %w", err)
	}
	return ms, nil
}

// CanUse reports whether the given method's required lists are fully
// materialized for the query.
func (e *Engine) CanUse(src string, m Method) (bool, error) {
	e.beginRead()
	defer e.endRead()
	tr, err := e.translateMode(src, translate.ModeVague)
	if err != nil {
		return false, err
	}
	sids, terms := flatten(tr)
	switch m {
	case MethodERA, MethodAuto:
		return true, nil
	case MethodTA, MethodNRA:
		return e.store.Covered(index.KindRPL, terms, sids)
	case MethodMerge:
		return e.store.Covered(index.KindERPL, terms, sids)
	case MethodRace:
		rpl, err := e.store.Covered(index.KindRPL, terms, sids)
		if err != nil || !rpl {
			return false, err
		}
		return e.store.Covered(index.KindERPL, terms, sids)
	default:
		return false, fmt.Errorf("trex: unknown method %d", int(m))
	}
}

// QueryOptions controls evaluation beyond the basic (k, method) pair.
type QueryOptions struct {
	// K is the number of answers (0 = all).
	K int
	// Method defaults to MethodAuto.
	Method Method
	// Mode selects the NEXI interpretation (default vague).
	Mode translate.Mode
	// PhraseBonus scales the proximity bonus quoted phrases earn when
	// their words occur adjacently in an answer (0 disables; 1 is a
	// sensible default weight).
	PhraseBonus float64
	// Offset skips the first Offset answers (pagination). The retrieval
	// phase computes Offset+K answers, so deep pages cost accordingly.
	Offset int
	// NoCache bypasses the result cache for this query (no lookup, no
	// fill). The differential oracle uses it to compare cached and
	// uncached rankings on one engine.
	NoCache bool
}

// Query evaluates a NEXI query, returning the top k answers (all answers
// when k <= 0) using the requested method. MethodAuto resolves through
// the online planner's cost model (Options.Planner), falling back to
// the static coverage-plus-k heuristic when the planner is disabled.
func (e *Engine) Query(src string, k int, m Method) (*Result, error) {
	return e.QueryOptsCtx(context.Background(), src, QueryOptions{K: k, Method: m})
}

// QueryCtx is Query with a caller context: a deadline bounds evaluation
// (the strategies stop at block boundaries and return a best-effort
// ranking with Result.Approximate set), and a cancellation aborts with
// the context's error.
func (e *Engine) QueryCtx(ctx context.Context, src string, k int, m Method) (*Result, error) {
	return e.QueryOptsCtx(ctx, src, QueryOptions{K: k, Method: m})
}

// QueryOpts evaluates with full options (no caller deadline).
func (e *Engine) QueryOpts(src string, opts QueryOptions) (*Result, error) {
	return e.QueryOptsCtx(context.Background(), src, opts)
}

// QueryOptsCtx is the full query entry point: admission control (when
// configured, the query first claims an execution slot or is shed /
// timed out at the door), the default front-door deadline (applied only
// when the caller brought none), the result cache (epoch-checked lookup
// before evaluation, fill after), and finally the evaluation pipeline.
// Successful queries — cached or not — are fed to the autopilot's
// workload tracker so index selection follows observed traffic.
func (e *Engine) QueryOptsCtx(ctx context.Context, src string, opts QueryOptions) (*Result, error) {
	var queueWait time.Duration
	if adm := e.adm; adm != nil {
		release, wait, err := adm.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		queueWait = wait
		if m := e.met; m != nil && m.queueWait != nil {
			m.queueWait.Observe(wait.Seconds())
		}
	}
	if d := e.fd.Deadline; d > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}

	e.beginRead()
	var ckey string
	var epoch uint64
	cache := e.rcache
	useCache := cache != nil && !opts.NoCache
	if useCache {
		ckey = cacheKey(src, opts)
		// The epoch cannot move while we hold the read lock (beginWrite
		// bumps it under the exclusive lock), so a hit at this epoch is
		// exactly as fresh as an evaluation started now — and a fill
		// below tags the entry with the epoch its evaluation saw.
		epoch = e.writeEpoch.Load()
		if v, ok := cache.Get(ckey, epoch); ok {
			e.endRead()
			out := *v.(*Result)
			out.Cached = true
			out.Trace = nil
			out.Plan = nil
			e.observePilot(src, opts.K)
			return &out, nil
		}
	}
	res, err := e.queryOpts(ctx, src, opts, queueWait)
	if err == nil && useCache && !res.Approximate {
		cache.Put(ckey, epoch, res)
	}
	e.endRead()
	if err == nil {
		e.observePilot(src, opts.K)
	}
	return res, err
}

// observePilot feeds a successful query to the autopilot's workload
// tracker (when enabled).
func (e *Engine) observePilot(src string, k int) {
	if p := e.pilot.Load(); p != nil {
		if k <= 0 {
			// Track "all answers" queries at the shared default k — the
			// workload model (Definition 4.1) needs a concrete k.
			k = DefaultK
		}
		p.Observe(src, k)
	}
}

// cacheKey folds every ranking-relevant option into the result-cache
// key. Anything that can change Answers must appear here; NoCache must
// not (it only controls cache participation).
func cacheKey(src string, opts QueryOptions) string {
	return strconv.Itoa(opts.K) + "\x00" + strconv.Itoa(int(opts.Method)) + "\x00" +
		strconv.Itoa(int(opts.Mode)) + "\x00" + strconv.Itoa(opts.Offset) + "\x00" +
		strconv.FormatFloat(opts.PhraseBonus, 'g', -1, 64) + "\x00" + src
}

// queryOpts runs the query pipeline, wrapped in telemetry when enabled:
// a per-query trace (spans with I/O attribution), per-method counters
// and latency histograms, retrieval effort counters, and the slow-query
// log. With telemetry disabled it is exactly the bare pipeline.
func (e *Engine) queryOpts(ctx context.Context, src string, opts QueryOptions, queueWait time.Duration) (*Result, error) {
	met := e.met
	if met == nil {
		return e.queryCore(ctx, src, opts, nil)
	}

	trc := telemetry.NewTrace(src, opts.K)
	trc.Queue = queueWait
	win := met.guard.Enter()
	res, err := e.queryCore(ctx, src, opts, trc)
	win.Exit()
	trc.Finish()
	if err != nil {
		met.queryErrors.Inc()
		return nil, err
	}

	trc.Method = res.Method.String()
	// The per-query I/O deltas are exact only when the measurement
	// window had the shared counters to itself: no overlapping query
	// window, no writer traffic (captureIO's view), and no MethodRace
	// loser still draining I/O into later spans. (res.Method is the race
	// winner, so the race check must look at the requested method.)
	exact := win.Exclusive() && opts.Method != MethodRace
	if st := res.Stats; st != nil {
		st.IOExact = st.IOExact && exact
		trc.IOExact = st.IOExact
	} else {
		trc.IOExact = exact
	}
	res.Trace = trc

	mi := methodIndex(res.Method)
	met.queries[mi].Inc()
	met.queryDur.Observe(trc.Wall.Seconds())
	for i := 0; i < numPhases; i++ {
		if sp := trc.FindSpan(phaseNames[i]); sp != nil {
			met.phaseDur[i].Observe(sp.Dur.Seconds())
			if i == phaseRetrieve {
				met.retrievalDur[mi].Observe(sp.Dur.Seconds())
			}
		}
	}
	if st := res.Stats; st != nil {
		met.blockSkips.Add(uint64(st.BlockSkips))
		met.sortedAccesses.Add(uint64(st.SortedAccesses))
		met.randomAccesses.Add(uint64(st.RandomAccesses))
		met.heapOps.Add(uint64(st.HeapOps))
		met.cursorSteps.Add(uint64(st.CursorSteps))
		if st.ThresholdStop {
			met.thresholdStops.Inc()
		}
	}
	if met.slow.Maybe(telemetry.SlowLogEntry{
		Query:  src,
		Method: trc.Method,
		K:      opts.K,
		// Wall is the client-visible latency: queue wait plus evaluation.
		Wall:      trc.Wall + queueWait,
		QueueWait: queueWait,
		Trace:     trc,
	}) {
		met.slowQueries.Inc()
	}
	return res, nil
}

// queryCore is the bare query pipeline. When trc is non-nil it brackets
// each phase in a trace span and attributes the engine's shared I/O
// counter deltas to it; every instrumentation step is alloc-free so the
// telemetry overhead stays at the trace's own two allocations.
func (e *Engine) queryCore(ctx context.Context, src string, opts QueryOptions, trc *telemetry.Trace) (*Result, error) {
	k, m := opts.K, opts.Method

	var ioPrev index.IOStat
	span := -1
	if trc != nil {
		ioPrev = e.store.IOStats()
		span = trc.StartSpan("translate")
	}
	tr, hit, err := e.translateModeHit(src, opts.Mode)
	if trc != nil {
		sp, now := e.endSpanIO(trc, span, ioPrev)
		sp.Cached = hit
		ioPrev = now
	}
	if err != nil {
		return nil, err
	}

	if trc != nil {
		span = trc.StartSpan("plan")
	}
	sids, terms := flatten(tr)
	negs := negativeTerms(tr)
	// Stopworded query terms carry no signal: the index has no postings
	// for them, so drop them up front (a stopword-only query matches
	// nothing, mirroring classic IR engines).
	if terms, err = e.store.FilterStopwords(terms); err != nil {
		return nil, err
	}
	if negs, err = e.store.FilterStopwords(negs); err != nil {
		return nil, err
	}
	sc, err := e.store.NewScorer(append(append([]string{}, terms...), negs...))
	if err != nil {
		return nil, err
	}

	// Multi-clause queries combine scores across elements (support
	// clauses contribute containment bonuses), so their retrieval phase
	// must produce all matches. A single target-clause query ranks purely
	// by per-element scores — support bonuses cannot apply (every
	// retrieved element is an answer) — so k (plus any pagination offset)
	// pushes down into the strategy, which is the whole point of top-k
	// evaluation. Computed before method resolution: the planner's k
	// feature must be the k the retrieval phase will actually see.
	kEval := 0
	if len(tr.Clauses) == 1 && tr.Clauses[0].IsTarget && len(negs) == 0 {
		kEval = k
		if k > 0 && opts.Offset > 0 {
			kEval = k + opts.Offset
		}
	}

	// With the planner enabled, every query's feature vector is
	// extracted (stat-cache lookups, no page reads when warm): auto
	// queries plan with it, and every exactly measured run — fixed
	// method or planned — calibrates the model with it afterwards.
	var feats planner.Features
	featsOK := false
	var plan *planner.Decision
	if p := e.pln; p != nil {
		if f, ferr := e.planFeatures(sids, terms, kEval); ferr == nil {
			feats, featsOK = f, true
		}
	}
	if m == MethodAuto {
		if p := e.pln; p != nil && featsOK {
			d := p.model.Plan(feats)
			plan = &d
			m = toEngineMethod(d.Method)
			p.decisions[d.Method].Add(1)
		} else {
			if p := e.pln; p != nil {
				p.fallbacks.Add(1)
			}
			m, err = e.pick(sids, terms, k)
			if err != nil {
				return nil, err
			}
		}
	}
	if trc != nil {
		sp, now := e.endSpanIO(trc, span, ioPrev)
		sp.Method = m.String()
		ioPrev = now
	}

	if trc != nil {
		span = trc.StartSpan("retrieve")
	}
	scored, stats, m, err := e.retrieve(ctx, m, sids, terms, sc, kEval)
	if trc != nil {
		sp, now := e.endSpanIO(trc, span, ioPrev)
		ioPrev = now
		sp.Method = m.String()
		if stats != nil {
			sp.CursorSteps = stats.CursorSteps
			sp.SortedAccesses = stats.SortedAccesses
			sp.RandomAccesses = stats.RandomAccesses
			sp.HeapOps = stats.HeapOps
			sp.BlockSkips = stats.BlockSkips
			sp.ListReads = stats.ListReads
			sp.Items = stats.Answers
			// The heap share of retrieval, pre-measured by the strategy.
			trc.AddSpan(telemetry.Span{Name: "retrieve/heap", Start: sp.Start, Dur: stats.HeapTime})
		}
	}
	if err != nil {
		return nil, err
	}
	if featsOK {
		// Calibrate on the executed method (the race winner when the
		// caller forced MethodRace); shadow-sample auto-planned queries
		// so the runner-up's cost keeps the model honest.
		e.observeRun(m, feats, stats)
		if plan != nil && plan.RunnerUp >= 0 && stats != nil && !stats.Approximate {
			if ru := toEngineMethod(plan.RunnerUp); ru != m && e.pln.shouldShadow() {
				e.launchShadow(ru, sids, terms, sc, kEval, feats, stats.CostProxy())
			}
		}
	}

	if trc != nil {
		span = trc.StartSpan("combine")
	}
	answers, err := e.combine(tr, scored, negs, sc, opts.PhraseBonus)
	if err != nil {
		return nil, err
	}
	total := len(answers)
	if opts.Offset > 0 {
		if opts.Offset >= len(answers) {
			answers = nil
		} else {
			answers = answers[opts.Offset:]
		}
	}
	if k > 0 && len(answers) > k {
		answers = answers[:k]
	}
	if trc != nil {
		sp, _ := e.endSpanIO(trc, span, ioPrev)
		sp.Items = len(answers)
	}
	return &Result{
		Query:        src,
		Method:       m,
		K:            k,
		Answers:      answers,
		TotalAnswers: total,
		Translation:  tr,
		Stats:        stats,
		Plan:         plan,
		Approximate:  stats != nil && stats.Approximate,
	}, nil
}

// retrieve runs the requested strategy's retrieval phase. For MethodRace
// it runs TA and Merge concurrently and returns whichever finishes first
// (with Method rewritten to the winner).
func (e *Engine) retrieve(ctx context.Context, m Method, sids []uint32, terms []string, sc *score.Scorer, kEval int) ([]retrieval.Scored, *retrieval.Stats, Method, error) {
	kTA := kEval
	if kTA <= 0 {
		// TA needs a concrete k; for full evaluation use a bound no
		// answer set can exceed.
		kTA = 1 << 30
	}
	switch m {
	case MethodERA:
		scored, stats, err := retrieval.ExhaustiveTopKCtx(ctx, e.store, sids, terms, sc, kEval)
		return scored, stats, m, err
	case MethodTA:
		scored, stats, err := retrieval.TACtx(ctx, e.store, sids, terms, sc, kTA)
		return scored, stats, m, err
	case MethodNRA:
		scored, stats, err := retrieval.NRACtx(ctx, e.store, sids, terms, kTA)
		return scored, stats, m, err
	case MethodMerge:
		scored, stats, err := retrieval.MergeCtx(ctx, e.store, sids, terms, kEval)
		return scored, stats, m, err
	case MethodRace:
		type outcome struct {
			scored []retrieval.Scored
			stats  *retrieval.Stats
			m      Method
			err    error
		}
		ch := make(chan outcome, 2)
		e.inflight.Add(2)
		go func() {
			defer e.inflight.Done()
			// Each racer holds its own guard window so a loser that keeps
			// reading after the query returns taints any query window it
			// overlaps (their I/O deltas would include the loser's reads).
			if m := e.met; m != nil {
				w := m.guard.Enter()
				defer w.Exit()
			}
			s, st, err := retrieval.TACtx(ctx, e.store, sids, terms, sc, kTA)
			ch <- outcome{s, st, MethodTA, err}
		}()
		go func() {
			defer e.inflight.Done()
			if m := e.met; m != nil {
				w := m.guard.Enter()
				defer w.Exit()
			}
			s, st, err := retrieval.MergeCtx(ctx, e.store, sids, terms, kEval)
			ch <- outcome{s, st, MethodMerge, err}
		}()
		first := <-ch
		if first.err != nil {
			// Fall back to the other racer rather than failing the query.
			second := <-ch
			if second.err != nil {
				return nil, nil, m, fmt.Errorf("trex: race failed: %v / %v", first.err, second.err)
			}
			return second.scored, second.stats, second.m, nil
		}
		return first.scored, first.stats, first.m, nil
	default:
		return nil, nil, m, fmt.Errorf("trex: unknown method %d", int(m))
	}
}

func (e *Engine) pick(sids []uint32, terms []string, k int) (Method, error) {
	rplOK, err := e.store.Covered(index.KindRPL, terms, sids)
	if err != nil {
		return MethodERA, err
	}
	erplOK, err := e.store.Covered(index.KindERPL, terms, sids)
	if err != nil {
		return MethodERA, err
	}
	switch {
	case rplOK && k > 0 && k <= taPreferredK:
		return MethodTA, nil
	case erplOK:
		return MethodMerge, nil
	case rplOK:
		return MethodTA, nil
	default:
		return MethodERA, nil
	}
}

// phrases returns the positive quoted phrases of the query.
func phrases(tr *translate.Translation) [][]string {
	var out [][]string
	for i := range tr.Clauses {
		for _, t := range tr.Clauses[i].Terms {
			if !t.Minus && len(t.Phrase) > 1 {
				out = append(out, t.Phrase)
			}
		}
	}
	return out
}

// combine turns the flattened retrieval result into ranked answers:
// elements in the target extents, with the scores of containing (ancestor)
// and contained (descendant) result elements folded in, negated-term
// penalties subtracted, and an optional proximity bonus for quoted
// phrases. A single containment sweep over the results, sorted by
// (doc, start), attributes both support directions.
func (e *Engine) combine(tr *translate.Translation, scored []retrieval.Scored, negs []string, sc interface {
	Score(term string, tf int, elemLen int) float64
}, phraseBonus float64,
) ([]Answer, error) {
	targetSet := make(map[uint32]bool, len(tr.TargetSIDs))
	for _, s := range tr.TargetSIDs {
		targetSet[s] = true
	}
	type item struct {
		elem   index.Element
		score  float64
		target bool
		bonus  float64
	}
	items := make([]*item, 0, len(scored))
	for _, s := range scored {
		items = append(items, &item{elem: s.Elem, score: s.Score, target: targetSet[s.Elem.SID]})
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i].elem, items[j].elem
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		return a.Start() < b.Start()
	})

	// Sweep with an ancestor stack: when visiting x, the stack holds
	// exactly the result elements that contain x. Bonuses flow only
	// between support (non-target) elements and answers: a support
	// ancestor boosts the answers inside it, and a support descendant
	// boosts the answer containing it. Answers never boost each other —
	// a containing answer's own score already counts every term inside
	// its span, so that would double-count.
	var stack []*item
	for _, x := range items {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.elem.Doc == x.elem.Doc && x.elem.End <= top.elem.End {
				break // top contains x
			}
			stack = stack[:len(stack)-1]
		}
		if x.target {
			for _, anc := range stack {
				if !anc.target {
					x.bonus += anc.score // ancestor support
				}
			}
		} else {
			for _, anc := range stack {
				if anc.target {
					anc.bonus += x.score // descendant support
				}
			}
		}
		stack = append(stack, x)
	}

	queryPhrases := phrases(tr)
	var answers []Answer
	for _, it := range items {
		if !it.target {
			continue
		}
		total := it.score + it.bonus
		for _, w := range negs {
			tf, err := index.TFInSpan(e.store, w, it.elem)
			if err != nil {
				return nil, err
			}
			total -= sc.Score(w, tf, int(it.elem.Length))
		}
		if phraseBonus > 0 {
			for _, ph := range queryPhrases {
				pf, err := index.PhraseFreqInSpan(e.store, ph, it.elem)
				if err != nil {
					return nil, err
				}
				if pf > 0 {
					// Reward exact phrase hits with the phrase-as-a-unit
					// score, scaled by the caller's weight.
					total += phraseBonus * sc.Score(ph[0], pf, int(it.elem.Length))
				}
			}
		}
		path := ""
		if n := e.sum.NodeBySID(int(it.elem.SID)); n != nil {
			path = n.XPathExpr()
		}
		answers = append(answers, Answer{
			Doc:   it.elem.Doc,
			Start: it.elem.Start(),
			End:   it.elem.End,
			SID:   it.elem.SID,
			Path:  path,
			Score: total,
		})
	}
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return index.CompareDocEnd(answers[i].Doc, answers[i].End, answers[j].Doc, answers[j].End) < 0
	})
	return answers, nil
}
