#!/bin/sh
# End-to-end smoke test for `trexserve -autopilot`: build the binaries,
# generate and load a tiny corpus, serve it with the autopilot on an
# aggressive interval, push a burst of queries through /search, and
# verify /autopilot reports a live daemon that observed them. Exits
# non-zero on any failure. Needs only the go toolchain (no curl: the
# HTTP checks use a tiny Go helper).
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "==> building binaries into $WORK/bin"
$GO build -o "$WORK/bin/" ./cmd/trexgen ./cmd/trexload ./cmd/trexserve

echo "==> generating + loading a 40-doc corpus"
"$WORK/bin/trexgen" -style ieee -docs 40 -seed 7 -out "$WORK/corpus"
"$WORK/bin/trexload" -corpus "$WORK/corpus" -db "$WORK/ieee.trexdb" -docs

ADDR="127.0.0.1:18497"
echo "==> starting trexserve with the autopilot (drift trigger = 5 queries)"
"$WORK/bin/trexserve" -db "$WORK/ieee.trexdb" -addr "$ADDR" \
    -autopilot -autopilot-interval 500ms -autopilot-drift 5 \
    -autopilot-budget 1000000 -autopilot-pause 1ms \
    >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# smokeget GETs a URL (retrying while the server comes up) and greps the
# body; written in Go so the script has zero dependencies beyond the
# toolchain.
cat >"$WORK/smokeget.go" <<'EOF'
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	url, want := os.Args[1], os.Args[2]
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(200 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "GET %s: status %d: %s\n", url, resp.StatusCode, body)
			os.Exit(1)
		}
		if !strings.Contains(string(body), want) {
			fmt.Fprintf(os.Stderr, "GET %s: body missing %q:\n%s\n", url, want, body)
			os.Exit(1)
		}
		fmt.Printf("GET %s ok (%d bytes)\n", url, len(body))
		return
	}
	fmt.Fprintf(os.Stderr, "GET %s: never came up: %v\n", url, lastErr)
	os.Exit(1)
}
EOF

QUERY='//article//sec[about(., ontologies case study)]'
ENC='%2F%2Farticle%2F%2Fsec%5Babout(.%2C%20ontologies%20case%20study)%5D'

echo "==> autopilot endpoint answers and reports enabled"
$GO run "$WORK/smokeget.go" "http://$ADDR/autopilot" '"enabled":true'

echo "==> pushing 8 queries through /search (crosses the drift trigger)"
i=0
while [ $i -lt 8 ]; do
    $GO run "$WORK/smokeget.go" "http://$ADDR/search?k=5&q=$ENC" '"hits"' >/dev/null
    i=$((i + 1))
done

echo "==> autopilot observed the traffic"
$GO run "$WORK/smokeget.go" "http://$ADDR/autopilot" '"totalObserved":8'

# Give the daemon a beat to complete a drift-triggered run, then check
# queries still answer correctly mid-maintenance.
sleep 1
$GO run "$WORK/smokeget.go" "http://$ADDR/search?k=5&q=$ENC" '"hits"' >/dev/null
$GO run "$WORK/smokeget.go" "http://$ADDR/autopilot" '"enabled":true'

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "==> smoke test passed (server log: OK)"
