package trex

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
)

// answersEqual demands byte-identical rankings: same order, same spans,
// same scores.
func answersEqual(a, b []Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegmentBackendMatchesPager runs the same queries on a pager-backed
// and a segment-backed engine and requires identical rankings from every
// strategy, before and after materialization.
func TestSegmentBackendMatchesPager(t *testing.T) {
	col := corpus.GenerateIEEE(40, 7)
	pager, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	seg, err := CreateMemory(col, &Options{SegmentLists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.Store().Segments() == nil {
		t.Fatal("segment store not attached")
	}

	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., clustering)]//sec[about(., retrieval evaluation)]`,
	}
	for _, q := range queries {
		if _, err := pager.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
		if _, err := seg.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		for _, m := range []Method{MethodERA, MethodTA, MethodNRA, MethodMerge} {
			rp, err := pager.Query(q, 10, m)
			if err != nil {
				t.Fatalf("pager %v %s: %v", m, q, err)
			}
			rs, err := seg.Query(q, 10, m)
			if err != nil {
				t.Fatalf("segment %v %s: %v", m, q, err)
			}
			if !answersEqual(rp.Answers, rs.Answers) {
				t.Fatalf("%v rankings diverge on %s:\npager   %v\nsegment %v", m, q, rp.Answers, rs.Answers)
			}
		}
	}
	if rows := seg.Store().Segments().RowsRead(); rows == 0 {
		t.Fatal("segment served no rows — queries fell back to the pager")
	}
}

// TestSegmentReadYourWrites checks the dirty-flag fallback: list
// mutations staged between commits must be visible to queries before the
// next CommitLists, and the segment must take over again afterwards.
func TestSegmentReadYourWrites(t *testing.T) {
	eng := testEngineOpts(t, 30, 42, &Options{SegmentLists: true})
	q := `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(q, 5, MethodTA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers after materialize")
	}

	// Drop the lists without a commit: the segment still holds them, but
	// the dirty flag must route reads to the (now empty) trees.
	tr, err := eng.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sids, terms := flatten(tr)
	eng.beginWrite()
	for _, term := range terms {
		for _, sid := range sids {
			if _, err := eng.store.DropList(index.KindRPL, term, sid); err != nil {
				eng.endWrite()
				t.Fatal(err)
			}
			if _, err := eng.store.DropList(index.KindERPL, term, sid); err != nil {
				eng.endWrite()
				t.Fatal(err)
			}
		}
	}
	eng.endWrite()
	if ok, err := eng.CanUse(q, MethodTA); err != nil || ok {
		t.Fatalf("RPL coverage after drop = %v, %v; want false", ok, err)
	}

	// Rebuild and confirm the segment serves again with the same answers.
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	rowsBefore := eng.Store().Segments().RowsRead()
	res2, err := eng.Query(q, 5, MethodTA)
	if err != nil {
		t.Fatal(err)
	}
	if !answersEqual(res.Answers, res2.Answers) {
		t.Fatalf("answers changed across drop+rematerialize:\n%v\n%v", res.Answers, res2.Answers)
	}
	if eng.Store().Segments().RowsRead() == rowsBefore {
		t.Fatal("rematerialized query did not read from the segment")
	}
}

// TestSegmentPersistsAcrossReopen exercises the on-disk lifecycle: the
// backend marker makes Open re-attach, the manifest names the committed
// generation, and rankings survive the restart.
func TestSegmentPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "col.trex")
	col := corpus.GenerateIEEE(25, 11)
	q := `//article//sec[about(., ontologies case study)]`

	eng, err := Create(path, col, &Options{SegmentLists: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		eng.Close()
		t.Fatal(err)
	}
	want, err := eng.Query(q, 10, MethodTA)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	gen := eng.Store().Segments().Generation()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("no segment generation committed")
	}
	if _, err := os.Stat(filepath.Join(segmentDir(path), "MANIFEST")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	// No SegmentLists option on reopen: the persisted marker decides.
	re, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ss := re.Store().Segments()
	if ss == nil {
		t.Fatal("reopen did not attach segments")
	}
	if ss.Generation() != gen {
		t.Fatalf("reopen generation = %d, want %d (a clean reopen must not rebuild)", ss.Generation(), gen)
	}
	got, err := re.Query(q, 10, MethodTA)
	if err != nil {
		t.Fatal(err)
	}
	if !answersEqual(want.Answers, got.Answers) {
		t.Fatalf("rankings changed across reopen:\n%v\n%v", want.Answers, got.Answers)
	}
	if ss.RowsRead() == 0 {
		t.Fatal("reopened engine did not read from the segment")
	}
}

// TestSegmentCrashBeforeSwap dies between the segment fsync and the
// manifest swap and requires the old generation to serve intact after
// reopening, across several crash/recover rounds.
func TestSegmentCrashBeforeSwap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "col.trex")
	col := corpus.GenerateIEEE(25, 13)
	q := `//article//sec[about(., ontologies case study)]`

	eng, err := Create(path, col, &Options{SegmentLists: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		eng.Close()
		t.Fatal(err)
	}
	want, err := eng.Query(q, 10, MethodTA)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	if len(want.Answers) == 0 {
		eng.Close()
		t.Fatal("no baseline answers — the crash assertions would be vacuous")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	crash := `//article[about(., clustering)]//sec[about(., retrieval)]`
	for round := 0; round < 3; round++ {
		eng, err := Open(path, nil)
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		gen := eng.Store().Segments().Generation()
		eng.Store().Segments().CrashBeforeSwap = func() error {
			return fmt.Errorf("simulated crash before manifest swap")
		}
		if _, err := eng.Materialize(crash, index.KindRPL, index.KindERPL); err == nil {
			eng.Close()
			t.Fatalf("round %d: materialize survived the crash hook", round)
		}
		// Abandon the engine without Close (Close would flush the pager,
		// which the crashed process never did) and recover from disk.
		re, err := Open(path, nil)
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		ss := re.Store().Segments()
		if ss.Generation() != gen {
			t.Fatalf("round %d: generation after crash = %d, want old %d", round, ss.Generation(), gen)
		}
		got, err := re.Query(q, 10, MethodTA)
		if err != nil {
			t.Fatalf("round %d query: %v", round, err)
		}
		if !answersEqual(want.Answers, got.Answers) {
			t.Fatalf("round %d: old generation does not serve intact:\n%v\n%v", round, want.Answers, got.Answers)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
