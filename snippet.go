package trex

import (
	"strings"

	"trex/internal/corpus"
	"trex/internal/xmlscan"
)

// Snippet renders a plain-text excerpt of an answer centered on the first
// occurrence of any of the given terms, with XML markup stripped. width
// bounds the excerpt length in bytes (0 = 160). Requires the engine to
// have been built with Options.StoreDocuments (or reopened from such a
// database).
func (e *Engine) Snippet(a Answer, terms []string, width int) (string, error) {
	e.beginRead()
	defer e.endRead()
	if width <= 0 {
		width = 160
	}
	data, err := e.document(int(a.Doc))
	if err != nil {
		return "", err
	}
	// Answer offsets refer to the canonical XML rendering; for a JSON
	// corpus the stored bytes are JSON and must be rendered first.
	data, err = corpus.RenderXML(e.format, data)
	if err != nil {
		return "", err
	}
	if int(a.End) > len(data) || a.Start >= a.End {
		return "", errBadSpan(a)
	}
	span := data[a.Start:a.End]

	// Find the earliest occurrence of any term within the span.
	focus := -1
	s := xmlscan.NewScanner(span)
	for s.Next() && focus < 0 {
		ev := s.Event()
		if ev.Kind != xmlscan.KindText {
			continue
		}
		xmlscan.Tokenize(ev.Text, ev.Offset, func(tm xmlscan.Term) {
			if focus >= 0 {
				return
			}
			for _, q := range terms {
				if tm.Text == q {
					focus = tm.Offset
					return
				}
			}
		})
	}
	// Scanner errors cannot occur on a well-formed stored document slice
	// that starts at an element boundary; if the span is a fragment the
	// scan may stop early, which is fine for snippet purposes.
	if focus < 0 {
		focus = 0
	}

	lo := focus - width/2
	if lo < 0 {
		lo = 0
	}
	hi := lo + width
	if hi > len(span) {
		hi = len(span)
	}
	text := stripTags(span[lo:hi])
	text = strings.Join(strings.Fields(text), " ")
	var sb strings.Builder
	if lo > 0 {
		sb.WriteString("…")
	}
	sb.WriteString(text)
	if hi < len(span) {
		sb.WriteString("…")
	}
	return sb.String(), nil
}

// stripTags removes XML markup, keeping character data separated by
// spaces. It tolerates truncated markup at the window edges.
func stripTags(b []byte) string {
	var sb strings.Builder
	inTag := false
	for _, c := range b {
		switch {
		case c == '<':
			inTag = true
			sb.WriteByte(' ')
		case c == '>':
			inTag = false
		case !inTag:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

type errBadSpan Answer

func (e errBadSpan) Error() string {
	return "trex: answer span out of document bounds"
}
