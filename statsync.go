package trex

import (
	"fmt"
	"sort"

	"trex/internal/index"
	"trex/internal/score"
)

// Statistics synchronization for the distributed tier. Shards score
// documents locally, so byte-identical distributed rankings require
// every shard engine to hold the global collection statistics and the
// global per-term df/cf rows. The cluster coordinator reads each
// shard's exact local totals with CollectStatistics, merges them, and
// writes the union back into every replica with SyncStatistics.

// Statistics is one engine's exact scoring state: the integer totals
// behind CollectionStats (the stored average is truncated to 1/1000,
// so aggregation needs the raw sums) plus every term's df/cf row.
type Statistics struct {
	Docs     int
	Elements int
	TotalLen int64
	Terms    []index.TermStat
}

// CollectStatistics snapshots the engine's exact scoring statistics
// under the read lock.
func (e *Engine) CollectStatistics() (*Statistics, error) {
	e.beginRead()
	defer e.endRead()
	// All three reads are the engine's LOCAL contribution: after a sync
	// the serving CollectionStats/TermStats tables hold global values, so
	// re-aggregation must go through the store's decoupled local copies
	// (identical to the serving tables until the first sync).
	docs, err := e.store.LocalDocCount()
	if err != nil {
		return nil, fmt.Errorf("trex: collect statistics: %w", err)
	}
	elems, totalLen, err := e.store.ElementLengthStats()
	if err != nil {
		return nil, fmt.Errorf("trex: collect statistics (elements scan): %w", err)
	}
	st := &Statistics{Docs: docs, Elements: elems, TotalLen: totalLen}
	st.Terms, err = e.store.LocalTermStats()
	if err != nil {
		return nil, fmt.Errorf("trex: collect statistics (term scan): %w", err)
	}
	return st, nil
}

// SyncStatistics overwrites the engine's collection statistics and term
// df/cf rows with externally aggregated global values. It is a
// maintenance operation (exclusive with queries and other maintenance)
// and bumps the write epoch, so epoch-keyed result caches are
// invalidated: scores change even though no list changed.
//
// The average element length is recomputed here from the exact integer
// totals with the same float64 division BuildBase uses, then persisted
// through the same truncating encoder — this is what makes a shard's
// scorer bit-equal to a single engine built over the whole corpus.
func (e *Engine) SyncStatistics(st *Statistics) error {
	if st == nil {
		return fmt.Errorf("trex: sync statistics: nil statistics")
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.beginWrite()
	defer e.endWrite()
	avg := 0.0
	if st.Elements > 0 {
		avg = float64(st.TotalLen) / float64(st.Elements)
	}
	cs := score.CollectionStats{
		NumDocs:       st.Docs,
		NumElements:   st.Elements,
		AvgElementLen: avg,
	}
	if err := e.store.SyncStatistics(cs, st.Terms); err != nil {
		return fmt.Errorf("trex: sync statistics: %w", err)
	}
	if err := e.db.Flush(); err != nil {
		return fmt.Errorf("trex: sync statistics (flush): %w", err)
	}
	return nil
}

// MergeStatistics folds per-shard exact statistics into one global
// Statistics value: integer totals summed, term rows summed by term
// (output sorted by term so the fan-out writes are deterministic).
func MergeStatistics(parts []*Statistics) *Statistics {
	out := &Statistics{}
	type agg struct {
		df int
		cf int64
	}
	terms := map[string]agg{}
	order := []string{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Docs += p.Docs
		out.Elements += p.Elements
		out.TotalLen += p.TotalLen
		for _, t := range p.Terms {
			a, seen := terms[t.Term]
			if !seen {
				order = append(order, t.Term)
			}
			a.df += t.DF
			a.cf += t.CF
			terms[t.Term] = a
		}
	}
	sort.Strings(order)
	for _, term := range order {
		a := terms[term]
		out.Terms = append(out.Terms, index.TermStat{Term: term, DF: a.df, CF: a.cf})
	}
	return out
}
