package trex

import (
	"strconv"
	"time"

	"trex/internal/index"
	"trex/internal/segment"
	"trex/internal/storage"
	"trex/internal/telemetry"
)

// TelemetryOptions configures the engine's observability layer: the
// metrics registry behind /metrics, per-query trace spans, and the
// slow-query log. The zero value (and a nil pointer in Options) enables
// telemetry with defaults; set Disabled to opt out entirely, which
// removes even the per-query trace allocations from the hot path.
type TelemetryOptions struct {
	// Disabled turns the whole layer off: no registry, no traces, no
	// slow log. MetricsRegistry and SlowLog return nil.
	Disabled bool
	// SlowQueryThreshold is the wall-time budget at or above which a
	// query is recorded in the slow log (default 250ms; <= 0 keeps the
	// default — use SlowLog().SetThreshold(0) to disable recording).
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds the slow-query ring (default 128).
	SlowLogCapacity int
}

// DefaultSlowQueryThreshold is the slow-log budget when none is given.
const DefaultSlowQueryThreshold = 250 * time.Millisecond

// queryPhase indexes the fixed per-phase latency histograms; the order
// matches the trace span sequence.
const (
	phaseTranslate = iota
	phasePlan
	phaseRetrieve
	phaseCombine
	numPhases
)

var phaseNames = [numPhases]string{"translate", "plan", "retrieve", "combine"}

// numMethods covers MethodAuto..MethodNRA for the per-method arrays.
const numMethods = int(MethodNRA) + 1

// methodIndex maps a Method to its slot in the per-method metric
// arrays, clamping unknown values to MethodAuto's slot.
func methodIndex(m Method) int {
	if m < 0 || int(m) >= numMethods {
		return 0
	}
	return int(m)
}

// engineMetrics holds every pre-registered instrument the engine
// touches. All hot-path fields are resolved to concrete metric pointers
// at construction (per-method and per-phase arrays instead of label
// lookups), so recording a query is pure atomic arithmetic.
type engineMetrics struct {
	reg  *telemetry.Registry
	slow *telemetry.SlowLog
	// guard detects overlapping query measurement windows and writer
	// traffic, so per-query I/O deltas can be flagged exact or shared
	// (see telemetry.Guard and retrieval.Stats.IOExact).
	guard telemetry.Guard

	queries      [numMethods]*telemetry.Counter
	queryErrors  *telemetry.Counter
	queryDur     *telemetry.Histogram
	phaseDur     [numPhases]*telemetry.Histogram
	retrievalDur [numMethods]*telemetry.Histogram

	blockSkips     *telemetry.Counter
	sortedAccesses *telemetry.Counter
	randomAccesses *telemetry.Counter
	heapOps        *telemetry.Counter
	cursorSteps    *telemetry.Counter
	thresholdStops *telemetry.Counter

	translateHits   *telemetry.Counter
	translateMisses *telemetry.Counter
	writeLockWait   *telemetry.Histogram
	slowQueries     *telemetry.Counter
	// queueWait is registered by the front door (nil when admission
	// control is off): time admitted queries spent waiting for a slot.
	queueWait *telemetry.Histogram

	autopilotRuns     *telemetry.Counter
	autopilotFailures *telemetry.Counter
	autopilotDropped  *telemetry.Counter
	autopilotKept     *telemetry.Gauge
	autopilotDisk     *telemetry.Gauge

	// Streaming ingest: batch/doc counters, commit latency, and the
	// staged→committed freshness lag per document. The staged-docs and
	// staged-bytes gauges are func metrics over the engine's aggregate
	// atomics (see Engine.ingestStagedDocs).
	ingestBatches   *telemetry.Counter
	ingestDocs      *telemetry.Counter
	ingestCommitDur *telemetry.Histogram
	ingestFreshness *telemetry.Histogram
}

// initTelemetry builds the registry and wires the storage counters as
// func metrics (read at scrape time from the pager's own atomics, so
// nothing is double-maintained). Called once from build/Open before the
// engine is shared.
func (e *Engine) initTelemetry(opts *TelemetryOptions) {
	var o TelemetryOptions
	if opts != nil {
		o = *opts
	}
	if o.Disabled {
		return
	}
	if o.SlowQueryThreshold <= 0 {
		o.SlowQueryThreshold = DefaultSlowQueryThreshold
	}
	if o.SlowLogCapacity <= 0 {
		o.SlowLogCapacity = 128
	}

	reg := telemetry.NewRegistry()
	m := &engineMetrics{
		reg:  reg,
		slow: telemetry.NewSlowLog(o.SlowLogCapacity, o.SlowQueryThreshold),
	}

	db := e.db
	registerStorageMetrics(reg, db)

	for i := 0; i < numMethods; i++ {
		lbl := telemetry.Labels{"method": Method(i).String()}
		m.queries[i] = reg.Counter("trex_queries_total",
			"Queries evaluated, by requested-or-chosen retrieval method.", lbl)
		m.retrievalDur[i] = reg.Histogram("trex_retrieval_duration_seconds",
			"Retrieval-phase latency by executed method.", lbl, nil)
	}
	m.queryErrors = reg.Counter("trex_query_errors_total",
		"Queries that returned an error.", nil)
	m.queryDur = reg.Histogram("trex_query_duration_seconds",
		"End-to-end query latency.", nil, nil)
	for i := 0; i < numPhases; i++ {
		m.phaseDur[i] = reg.Histogram("trex_query_phase_seconds",
			"Query latency by pipeline phase.", telemetry.Labels{"phase": phaseNames[i]}, nil)
	}

	m.blockSkips = reg.Counter("trex_retrieval_block_skips_total",
		"Entries consumed through Merge's bulk drain fast path.", nil)
	m.sortedAccesses = reg.Counter("trex_retrieval_sorted_accesses_total",
		"RPL entries read under sorted access.", nil)
	m.randomAccesses = reg.Counter("trex_retrieval_random_accesses_total",
		"Per-(element, term) random probes.", nil)
	m.heapOps = reg.Counter("trex_retrieval_heap_ops_total",
		"Top-k heap pushes and evictions.", nil)
	m.cursorSteps = reg.Counter("trex_retrieval_cursor_steps_total",
		"Storage rows fetched by list iterators.", nil)
	m.thresholdStops = reg.Counter("trex_retrieval_threshold_stops_total",
		"TA/NRA runs that stopped via the threshold test instead of list exhaustion.", nil)

	m.translateHits = reg.Counter("trex_translate_cache_hits_total",
		"Query translations served from the LRU cache.", nil)
	m.translateMisses = reg.Counter("trex_translate_cache_misses_total",
		"Query translations computed from scratch.", nil)
	m.writeLockWait = reg.Histogram("trex_engine_write_lock_wait_seconds",
		"Time maintenance steps waited for the exclusive engine lock.", nil, nil)
	m.slowQueries = reg.Counter("trex_slow_queries_total",
		"Queries recorded in the slow-query log.", nil)

	m.autopilotRuns = reg.Counter("trex_autopilot_runs_total",
		"Completed autopilot re-optimization runs.", nil)
	m.autopilotFailures = reg.Counter("trex_autopilot_failures_total",
		"Autopilot runs that failed.", nil)
	m.autopilotDropped = reg.Counter("trex_autopilot_lists_dropped_total",
		"Materialized lists dropped by autopilot runs (plan drift).", nil)
	m.autopilotKept = reg.Gauge("trex_autopilot_lists_kept",
		"Materialized lists kept by the last autopilot run.", nil)
	m.autopilotDisk = reg.Gauge("trex_autopilot_disk_used_bytes",
		"Disk used by the materialized list set after the last autopilot run.", nil)

	m.ingestBatches = reg.Counter("trex_ingest_batches_total",
		"Committed streaming-ingest batches (including AddDocuments calls).", nil)
	m.ingestDocs = reg.Counter("trex_ingest_docs_total",
		"Documents committed through streaming ingest.", nil)
	m.ingestCommitDur = reg.Histogram("trex_ingest_commit_seconds",
		"Latency of the apply+flush phase of an ingest commit.", nil, nil)
	m.ingestFreshness = reg.Histogram("trex_ingest_freshness_lag_seconds",
		"Age of each document at commit: time from staging to queryable.", nil, nil)
	reg.GaugeFunc("trex_ingest_staged_docs",
		"Documents staged by live Ingestors, not yet committed.", nil,
		func() float64 { return float64(e.ingestStagedDocs.Load()) })
	reg.GaugeFunc("trex_ingest_staged_bytes",
		"Raw bytes staged by live Ingestors, not yet committed.", nil,
		func() float64 { return float64(e.ingestStagedBytes.Load()) })

	e.met = m
}

// registerStorageMetrics exposes the pager's counters as func metrics:
// the pager already maintains them atomically for the cost model, so
// the scrape path reads them instead of mirroring every increment.
func registerStorageMetrics(reg *telemetry.Registry, db *storage.DB) {
	reg.CounterFunc("trex_storage_pages_read_total",
		"Pages fetched from the storage backend.", nil,
		func() uint64 { return db.Stats().PagesRead })
	reg.CounterFunc("trex_storage_pages_written_total",
		"Pages written to the storage backend.", nil,
		func() uint64 { return db.Stats().PagesWritten })
	reg.CounterFunc("trex_storage_cache_hits_total",
		"Node lookups served from the page cache.", nil,
		func() uint64 { return db.Stats().CacheHits })
	reg.CounterFunc("trex_storage_cache_misses_total",
		"Node lookups that required a backend read.", nil,
		func() uint64 { return db.Stats().CacheMisses })
	reg.CounterFunc("trex_storage_cursor_seeks_total",
		"Cursor Seek operations.", nil,
		func() uint64 { return db.Stats().Seeks })
	reg.CounterFunc("trex_storage_cursor_nexts_total",
		"Cursor Next operations.", nil,
		func() uint64 { return db.Stats().Nexts })
	reg.CounterFunc("trex_storage_gets_total",
		"Point lookups.", nil,
		func() uint64 { return db.Stats().Gets })
	reg.CounterFunc("trex_storage_puts_total",
		"Insertions and updates.", nil,
		func() uint64 { return db.Stats().Puts })
	reg.CounterFunc("trex_storage_journal_commits_total",
		"Successful atomic flush commits.", nil,
		func() uint64 { return db.Stats().Flushes })
	reg.CounterFunc("trex_storage_journal_pages_total",
		"Live pages staged through the redo journal.", nil,
		func() uint64 { return db.Stats().JournalPages })
	reg.CounterFunc("trex_storage_journal_replays_total",
		"Pending redo journals replayed at open.", nil,
		func() uint64 { return db.Stats().JournalReplays })
	reg.GaugeFunc("trex_storage_pages",
		"Pages in the database file (disk usage = pages * 4096).", nil,
		func() float64 { return float64(db.PageCount()) })

	for i := 0; i < db.CacheShardCount(); i++ {
		shard := i
		lbl := telemetry.Labels{"shard": strconv.Itoa(i)}
		reg.CounterFunc("trex_storage_shard_cache_hits_total",
			"Page-cache hits by cache shard.", lbl,
			func() uint64 { return db.CacheShardStat(shard).Hits })
		reg.CounterFunc("trex_storage_shard_cache_misses_total",
			"Page-cache misses by cache shard.", lbl,
			func() uint64 { return db.CacheShardStat(shard).Misses })
	}
}

// MetricsRegistry exposes the engine's metric registry, or nil when
// telemetry is disabled.
func (e *Engine) MetricsRegistry() *telemetry.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.reg
}

// SlowLog exposes the slow-query log, or nil when telemetry is
// disabled. The threshold can be tuned at runtime via SetThreshold.
func (e *Engine) SlowLog() *telemetry.SlowLog {
	if e.met == nil {
		return nil
	}
	return e.met.slow
}

// endSpanIO closes trace span idx, attributes the I/O the engine's
// shared counters saw since prev to it — pager pages plus bytes served
// from the mmap'd segment — and returns the new snapshot for the next
// span. A method (not a closure) so the query hot path stays
// allocation-free.
func (e *Engine) endSpanIO(trc *telemetry.Trace, idx int, prev index.IOStat) (*telemetry.Span, index.IOStat) {
	now := e.store.IOStats()
	d := now.Sub(prev)
	sp := trc.EndSpan(idx)
	sp.PageReads = d.Storage.CacheHits + d.Storage.CacheMisses
	sp.BytesRead = d.Storage.PagesRead*storage.PageSize + d.SegmentBytes
	return sp, now
}

// registerSegmentMetrics exposes the segment store's counters and gauges
// as func metrics, mirroring registerStorageMetrics: the store already
// maintains them atomically for read accounting, so the scrape path
// reads them instead of double-counting.
func registerSegmentMetrics(reg *telemetry.Registry, ss *segment.Store) {
	reg.CounterFunc("trex_segment_rows_read_total",
		"Rows served from mmap'd segment cursors and gets.", nil,
		func() uint64 { return ss.RowsRead() })
	reg.CounterFunc("trex_segment_bytes_read_total",
		"Key+value bytes served from the mmap'd segment (the mapped-read analogue of pages_read * page_size).", nil,
		func() uint64 { return ss.BytesRead() })
	reg.CounterFunc("trex_segment_manifest_swaps_total",
		"Segment generation commits published via a manifest flip.", nil,
		func() uint64 { return ss.Swaps() })
	reg.CounterFunc("trex_segment_generations_retired_total",
		"Segment generations superseded by a newer commit.", nil,
		func() uint64 { return ss.GensRetired() })
	reg.GaugeFunc("trex_segment_generations_live",
		"Segment generations currently mapped (current plus pinned-old).", nil,
		func() float64 { return float64(ss.GensLive()) })
	reg.GaugeFunc("trex_segment_mapped_bytes",
		"Bytes of all live segment generation images.", nil,
		func() float64 { return float64(ss.MappedBytes()) })
	reg.GaugeFunc("trex_segment_reader_pins",
		"Outstanding segment reader pins.", nil,
		func() float64 { return float64(ss.PinsActive()) })
}
