package trex

import (
	"testing"
	"time"

	"trex/internal/index"
	"trex/internal/oracle/gen"
	"trex/internal/storage"
)

// Telemetry conformance: the numbers the observability layer reports
// must equal the numbers the engine actually did. Each test drives the
// engine single-threaded over oracle-generated corpora and cross-checks
// traces, metrics and the slow log against independently captured
// engine state.

func conformanceEngine(t *testing.T) *Engine {
	t.Helper()
	col := gen.Collection(11, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	eng, err := CreateMemory(col, &Options{
		Telemetry: &TelemetryOptions{SlowQueryThreshold: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

var conformanceQueries = []string{
	`//r[about(., ax)]`,
	`//s[about(., bx cx)]`,
	`//t[about(., dx)]//u[about(., ex)]`,
	`//u[about(., ax ex)]`,
	`//doc//r[about(., ax bx)]`,
}

// TestTraceIOMatchesEngineStats: with no concurrency, the sum of the
// trace's top-level span page/byte counts must equal the engine-global
// Stats delta across the query — the trace accounts for every page the
// engine touched, no more, no less.
func TestTraceIOMatchesEngineStats(t *testing.T) {
	eng := conformanceEngine(t)
	for _, m := range []Method{MethodERA, MethodTA, MethodMerge, MethodNRA} {
		if m != MethodERA {
			for _, q := range conformanceQueries {
				if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, q := range conformanceQueries {
			before := eng.DB().Stats()
			res, err := eng.Query(q, 5, m)
			after := eng.DB().Stats()
			if err != nil {
				t.Fatalf("%v %q: %v", m, q, err)
			}
			trc := res.Trace
			if trc == nil {
				t.Fatalf("%v %q: no trace", m, q)
			}
			d := after.Sub(before)
			wantPages := d.CacheHits + d.CacheMisses
			wantBytes := d.PagesRead * storage.PageSize
			if got := trc.PageReads(); got != wantPages {
				t.Errorf("%v %q: trace pages = %d, engine delta = %d", m, q, got, wantPages)
			}
			if got := trc.BytesRead(); got != wantBytes {
				t.Errorf("%v %q: trace bytes = %d, engine delta = %d", m, q, got, wantBytes)
			}
			if !trc.IOExact {
				t.Errorf("%v %q: single-threaded query not IOExact", m, q)
			}
			if res.Stats != nil && !res.Stats.IOExact {
				t.Errorf("%v %q: stats not IOExact", m, q)
			}
		}
	}
}

// TestTraceRetrieveSpanMatchesStats: the retrieve span must carry the
// exact counters the retrieval phase reported, and its I/O delta must
// equal the captureIO window (both bracket the same work).
func TestTraceRetrieveSpanMatchesStats(t *testing.T) {
	eng := conformanceEngine(t)
	for _, q := range conformanceQueries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []Method{MethodERA, MethodTA, MethodMerge, MethodNRA} {
		for _, q := range conformanceQueries {
			res, err := eng.Query(q, 3, m)
			if err != nil {
				t.Fatalf("%v %q: %v", m, q, err)
			}
			sp := res.Trace.FindSpan("retrieve")
			if sp == nil {
				t.Fatalf("%v %q: no retrieve span", m, q)
			}
			st := res.Stats
			if st == nil {
				t.Fatalf("%v %q: no stats", m, q)
			}
			if sp.Method != m.String() {
				t.Errorf("%v %q: span method = %q", m, q, sp.Method)
			}
			if sp.CursorSteps != st.CursorSteps || sp.SortedAccesses != st.SortedAccesses ||
				sp.RandomAccesses != st.RandomAccesses || sp.HeapOps != st.HeapOps ||
				sp.BlockSkips != st.BlockSkips || sp.Items != st.Answers {
				t.Errorf("%v %q: span counters diverge from stats:\nspan  %+v\nstats %+v", m, q, *sp, *st)
			}
			if sp.PageReads != st.PageReads || sp.BytesRead != st.BytesRead {
				t.Errorf("%v %q: span I/O (%d pages, %d bytes) != captureIO (%d, %d)",
					m, q, sp.PageReads, sp.BytesRead, st.PageReads, st.BytesRead)
			}
			hp := res.Trace.FindSpan("retrieve/heap")
			if hp == nil {
				t.Fatalf("%v %q: no retrieve/heap span", m, q)
			}
			if hp.Dur != st.HeapTime {
				t.Errorf("%v %q: heap span %v != stats.HeapTime %v", m, q, hp.Dur, st.HeapTime)
			}
		}
	}
}

// TestTracePhaseDurationsWithinWall: span durations are measured inside
// the query wall window, so top-level spans can never sum past it.
func TestTracePhaseDurationsWithinWall(t *testing.T) {
	eng := conformanceEngine(t)
	for _, q := range conformanceQueries {
		res, err := eng.Query(q, 5, MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		trc := res.Trace
		if sum := trc.TopLevelDur(); sum > trc.Wall {
			t.Errorf("%q: span sum %v exceeds wall %v", q, sum, trc.Wall)
		}
		if hp := trc.FindSpan("retrieve/heap"); hp != nil {
			if rp := trc.FindSpan("retrieve"); rp != nil && hp.Dur > rp.Dur {
				t.Errorf("%q: nested heap %v exceeds retrieve %v", q, hp.Dur, rp.Dur)
			}
		}
	}
}

// TestShardCountersSumToGlobal: every cache lookup increments exactly
// one shard counter and the matching global counter, so on a quiescent
// engine the shard sums must equal the global hit/miss totals — and
// hits+misses must equal the pages the traces reported touched.
func TestShardCountersSumToGlobal(t *testing.T) {
	eng := conformanceEngine(t)
	var tracedPages uint64
	for i := 0; i < 3; i++ {
		for _, q := range conformanceQueries {
			res, err := eng.Query(q, 5, MethodERA)
			if err != nil {
				t.Fatal(err)
			}
			tracedPages += res.Trace.PageReads()
		}
	}
	g := eng.DB().Stats()
	var hits, misses uint64
	for _, sh := range eng.DB().CacheShardStats() {
		hits += sh.Hits
		misses += sh.Misses
	}
	if hits != g.CacheHits || misses != g.CacheMisses {
		t.Fatalf("shard sums (%d hits, %d misses) != global (%d, %d)",
			hits, misses, g.CacheHits, g.CacheMisses)
	}
	// Total lookups = hits + misses. Everything this engine ever looked
	// up happened during the build or inside traced queries, so the
	// traced total can never exceed the global lookup count.
	if tracedPages > g.CacheHits+g.CacheMisses {
		t.Fatalf("traces claim %d page touches, engine only saw %d lookups",
			tracedPages, g.CacheHits+g.CacheMisses)
	}
}

// TestSlowLogCapturesExactly: the slow log must record exactly the
// queries whose wall time met the threshold — all of them under an
// always-trip threshold, none under an unreachable one, and none while
// disabled — with each entry carrying the query's own trace.
func TestSlowLogCapturesExactly(t *testing.T) {
	eng := conformanceEngine(t)
	log := eng.SlowLog()
	if log == nil {
		t.Fatal("telemetry enabled but no slow log")
	}
	if log.Total() != 0 {
		t.Fatalf("fresh log total = %d", log.Total())
	}

	// Unreachable threshold (set at engine creation): nothing records.
	for _, q := range conformanceQueries {
		if _, err := eng.Query(q, 5, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	if log.Total() != 0 {
		t.Fatalf("total = %d under 1h threshold", log.Total())
	}

	// Always-trip threshold: every query records, entries carry traces.
	log.SetThreshold(time.Nanosecond)
	for _, q := range conformanceQueries {
		if _, err := eng.Query(q, 5, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	if got := log.Total(); got != uint64(len(conformanceQueries)) {
		t.Fatalf("total = %d, want %d (every query over 1ns)", got, len(conformanceQueries))
	}
	entries := log.Entries()
	// Newest first: entries[0] is the last query issued.
	if entries[0].Query != conformanceQueries[len(conformanceQueries)-1] {
		t.Fatalf("newest entry = %q", entries[0].Query)
	}
	for _, e := range entries {
		if e.Trace == nil {
			t.Fatalf("entry %q has no trace", e.Query)
		}
		if e.Wall != e.Trace.Wall {
			t.Fatalf("entry %q wall %v != trace wall %v", e.Query, e.Wall, e.Trace.Wall)
		}
		if e.Wall < time.Nanosecond {
			t.Fatalf("entry %q under threshold", e.Query)
		}
	}

	// Disabled: nothing records, history stays.
	log.SetThreshold(0)
	for _, q := range conformanceQueries {
		if _, err := eng.Query(q, 5, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	if got := log.Total(); got != uint64(len(conformanceQueries)) {
		t.Fatalf("total moved to %d while disabled", got)
	}

	// The slow-query counter in the registry agrees with the log.
	snap := eng.MetricsRegistry().Snapshot()
	if e, ok := snap.Get("trex_slow_queries_total", nil); !ok || e.Value != float64(len(conformanceQueries)) {
		t.Fatalf("trex_slow_queries_total = %v, %v; want %d", e.Value, ok, len(conformanceQueries))
	}
}

// TestMetricsMatchQueryTraffic: per-method query counters and retrieval
// effort counters must equal what the issued queries' own stats sum to.
func TestMetricsMatchQueryTraffic(t *testing.T) {
	eng := conformanceEngine(t)
	for _, q := range conformanceQueries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[Method]float64{}
	var heapOps, cursorSteps, thresholdStops float64
	for _, m := range []Method{MethodERA, MethodTA, MethodMerge, MethodNRA} {
		for _, q := range conformanceQueries {
			res, err := eng.Query(q, 2, m)
			if err != nil {
				t.Fatal(err)
			}
			counts[m]++
			if st := res.Stats; st != nil {
				heapOps += float64(st.HeapOps)
				cursorSteps += float64(st.CursorSteps)
				if st.ThresholdStop {
					thresholdStops++
				}
			}
		}
	}
	snap := eng.MetricsRegistry().Snapshot()
	for m, want := range counts {
		e, ok := snap.Get("trex_queries_total", map[string]string{"method": m.String()})
		if !ok || e.Value != want {
			t.Errorf("trex_queries_total{method=%q} = %v, %v; want %v", m.String(), e.Value, ok, want)
		}
	}
	if e, ok := snap.Get("trex_retrieval_heap_ops_total", nil); !ok || e.Value != heapOps {
		t.Errorf("heap ops metric = %v, want %v", e.Value, heapOps)
	}
	if e, ok := snap.Get("trex_retrieval_cursor_steps_total", nil); !ok || e.Value != cursorSteps {
		t.Errorf("cursor steps metric = %v, want %v", e.Value, cursorSteps)
	}
	if e, ok := snap.Get("trex_retrieval_threshold_stops_total", nil); !ok || e.Value != thresholdStops {
		t.Errorf("threshold stops metric = %v, want %v", e.Value, thresholdStops)
	}
	if thresholdStops == 0 {
		t.Log("note: no TA/NRA run stopped via threshold on this corpus")
	}
	// The storage func metrics read the same atomics DB.Stats() does.
	g := eng.DB().Stats()
	if e, ok := snap.Get("trex_storage_cache_hits_total", nil); !ok || e.Value != float64(g.CacheHits) {
		t.Errorf("storage cache hits metric = %v, want %d", e.Value, g.CacheHits)
	}
	if e, ok := snap.Get("trex_storage_journal_commits_total", nil); !ok || e.Value != float64(g.Flushes) {
		t.Errorf("journal commits metric = %v, want %d", e.Value, g.Flushes)
	}
	if g.Flushes == 0 {
		t.Error("materialize traffic produced no flush commits")
	}
}

// TestExplainTrace: Explain carries its own trace with the translate
// and analyze phases.
func TestExplainTrace(t *testing.T) {
	eng := conformanceEngine(t)
	ex, err := eng.Explain(conformanceQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if ex.Trace == nil {
		t.Fatal("no explain trace")
	}
	if ex.Trace.FindSpan("translate") == nil || ex.Trace.FindSpan("analyze") == nil {
		t.Fatalf("explain spans = %+v", ex.Trace.Spans)
	}
	if ex.Trace.Wall <= 0 {
		t.Fatal("explain wall not stamped")
	}
	// Second explain hits the translation cache and the trace says so.
	ex2, err := eng.Explain(conformanceQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.Trace.FindSpan("translate").Cached {
		t.Fatal("second explain's translate span not marked cached")
	}
}
