package trex

import (
	"testing"
	"time"

	"trex/internal/corpus"
)

const overheadQuery = `//article//sec[about(., ontologies case study)]`

// overheadEngine builds an engine for overhead comparison. The slow-log
// threshold is set unreachably high so the only telemetry work measured
// is the always-on part: trace allocation, span stamping, metric updates.
func overheadEngine(tb testing.TB, disabled bool) *Engine {
	tb.Helper()
	col := corpus.GenerateIEEE(30, 42)
	eng, err := CreateMemory(col, &Options{
		Telemetry: &TelemetryOptions{Disabled: disabled, SlowQueryThreshold: time.Hour},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { eng.Close() })
	return eng
}

// TestQueryTelemetryAllocGuard pins the telemetry tax on the query hot
// path to its budget: the trace struct and its span slice, i.e. at most
// two extra heap allocations per query over a telemetry-free engine.
// Everything else (span stamping, histogram observes, counter bumps,
// slow-log screening) must stay allocation-free.
func TestQueryTelemetryAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short")
	}
	bare := overheadEngine(t, true)
	inst := overheadEngine(t, false)

	// Warm both: parse/translate caches, page cache, advisor state.
	for i := 0; i < 3; i++ {
		if _, err := bare.Query(overheadQuery, 5, MethodERA); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Query(overheadQuery, 5, MethodERA); err != nil {
			t.Fatal(err)
		}
	}

	base := testing.AllocsPerRun(200, func() {
		if _, err := bare.Query(overheadQuery, 5, MethodERA); err != nil {
			t.Fatal(err)
		}
	})
	with := testing.AllocsPerRun(200, func() {
		if _, err := inst.Query(overheadQuery, 5, MethodERA); err != nil {
			t.Fatal(err)
		}
	})
	delta := with - base
	t.Logf("allocs/op: disabled=%.1f enabled=%.1f delta=%.2f", base, with, delta)
	if delta > 2 {
		t.Errorf("telemetry adds %.2f allocs/op, budget is 2 (trace + span slice)", delta)
	}
}

// BenchmarkQueryTelemetryOverhead reports the end-to-end query cost with
// and without telemetry so the overhead shows up in bench output (and in
// BENCH_PR5.json via the pr5 experiment) as both ns/op and allocs/op.
func BenchmarkQueryTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name     string
		disabled bool
	}{
		{"disabled", true},
		{"enabled", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := overheadEngine(b, mode.disabled)
			if _, err := eng.Query(overheadQuery, 5, MethodERA); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(overheadQuery, 5, MethodERA); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
