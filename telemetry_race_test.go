package trex

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trex/internal/corpus"
	"trex/internal/index"
)

// TestTelemetryMixedQueryMaterializeRace is the -race regression for the
// instrumented read/write paths: concurrent queries (including MethodRace,
// whose loser keeps reading after the winner returns) against a writer
// looping Materialize. Before the telemetry guard, captureIO attributed
// the writer's page traffic to whichever query happened to be in flight;
// now overlapped windows must simply drop the IOExact claim, and every
// counter the registry reports must stay consistent with the traffic we
// actually issued.
func TestTelemetryMixedQueryMaterializeRace(t *testing.T) {
	col := corpus.GenerateIEEE(40, 303)
	eng, err := CreateMemory(col, &Options{
		Telemetry: &TelemetryOptions{SlowQueryThreshold: time.Nanosecond, SlowLogCapacity: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	methods := []Method{MethodAuto, MethodERA, MethodRace}

	const readers = 4
	const iters = 25
	var issued, inexact atomic.Uint64
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keep materializing and re-materializing while readers run.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := queries[i%len(queries)]
			if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
				t.Errorf("materialize %q: %v", q, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; i < iters; i++ {
				q := queries[(r+i)%len(queries)]
				m := methods[(r+i)%len(methods)]
				res, err := eng.Query(q, 5, m)
				if err != nil {
					t.Errorf("query %q (%v): %v", q, m, err)
					return
				}
				issued.Add(1)
				if res.Trace == nil {
					t.Errorf("query %q: no trace", q)
					return
				}
				if !res.Trace.IOExact {
					inexact.Add(1)
				}
				// Even when inexact, the aggregates come from monotone
				// counters, so a span can never report negative-wrapped I/O.
				if res.Trace.BytesRead() > 1<<40 {
					t.Errorf("query %q: implausible byte count %d (delta underflow?)", q, res.Trace.BytesRead())
				}
			}
		}(r)
	}

	// The writer loops for as long as the readers are issuing queries, so
	// every reader faces live write traffic; then it drains and stops.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	if t.Failed() {
		return
	}

	// With a writer looping the whole time and four overlapping readers,
	// exclusivity must have been lost at least once; if every single
	// window still claimed exactness the guard is not wired in.
	if inexact.Load() == 0 {
		t.Error("no query lost IOExact despite concurrent writer traffic")
	}

	// Registry totals agree with the traffic we issued.
	snap := eng.MetricsRegistry().Snapshot()
	var counted float64
	for _, m := range []Method{MethodAuto, MethodERA, MethodTA, MethodMerge, MethodRace, MethodNRA} {
		if e, ok := snap.Get("trex_queries_total", map[string]string{"method": m.String()}); ok {
			counted += e.Value
		}
	}
	if counted != float64(issued.Load()) {
		t.Errorf("trex_queries_total sums to %v, issued %d", counted, issued.Load())
	}
	if e, ok := snap.Get("trex_slow_queries_total", nil); !ok || e.Value != float64(issued.Load()) {
		t.Errorf("trex_slow_queries_total = %v (ok=%v), want %d", e.Value, ok, issued.Load())
	}

	// Shard counters were bumped concurrently with the global atomics;
	// quiescent, they must agree again.
	g := eng.DB().Stats()
	var hits, misses uint64
	for _, sh := range eng.DB().CacheShardStats() {
		hits += sh.Hits
		misses += sh.Misses
	}
	if hits != g.CacheHits || misses != g.CacheMisses {
		t.Errorf("shard sums (%d/%d) != global (%d/%d)", hits, misses, g.CacheHits, g.CacheMisses)
	}

	// The exposition writer runs against the same live registry.
	var sb strings.Builder
	if err := eng.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	if !strings.Contains(sb.String(), "trex_storage_journal_commits_total") {
		t.Error("exposition missing journal commit counter after materialize traffic")
	}
}
